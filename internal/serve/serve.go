// Package serve exposes the repository's cost models (Maly eq (1)–(7)) as
// a long-running HTTP/JSON service — the nanocostd daemon. The package is
// the production front-end the ROADMAP asks for: strict request validation
// that maps model-domain errors (the eq (6) pole at s_d ≤ s_d0, invalid
// yields, NaN-poisoned parameters) to 400 responses instead of 500s or
// NaN-bearing JSON, per-request timeouts, bounded concurrency with 429
// backpressure, request body size limits, graceful connection-draining
// shutdown, and an observability surface (/healthz, /metrics with request
// counters, a latency histogram, an in-flight gauge and the memo cache hit
// rates, plus structured request logging via log/slog).
//
// Routes:
//
//	POST /v1/cost          eq (1)–(5): full transistor-cost breakdown
//	POST /v1/designcost    eq (6): design cost C_DE and its marginal
//	POST /v1/generalized   eq (7): utilization + pluggable yield model
//	POST /v1/sweep         parameter sweeps over s_d, N_w or Y
//	POST /v1/batch         heterogeneous batch of cost/designcost/generalized
//	GET  /v1/figures/{id}  paper-figure data series (1–4), memoized
//	POST /v1/jobs          submit a sharded Monte Carlo simulation job
//	GET  /v1/jobs/{id}     job progress snapshot (NDJSON streams it live)
//	GET  /v1/jobs/{id}/result  final result envelope (byte-stable per spec)
//	DELETE /v1/jobs/{id}   cancel a running job
//	GET  /healthz          liveness probe (200 in every lifecycle state)
//	GET  /readyz           readiness probe (200 only while accepting traffic)
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/trace/{id} span tree of a recently traced request
//
// Every request is wrapped by the observe middleware: it assigns (or
// echoes) an X-Request-Id, opens a root trace span honoring an incoming
// X-Trace-Id (returned on the response; the completed span tree is
// retrievable at /debug/trace/{id} while it remains in the bounded ring),
// records the per-route counters and latency histogram, and emits exactly
// one structured access-log line per request — streamed responses
// included.
//
// /v1/sweep and /v1/figures/{id} answer with NDJSON streaming (one JSON
// value per line, flushed chunk by chunk) when the request carries
// "Accept: application/x-ndjson". Figure responses are served with strong
// ETags derived from the memoized content, so a matching If-None-Match
// costs a hash compare (304) instead of a regeneration.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// traceRingCapacity bounds how many completed traces the server retains
// for /debug/trace lookups. FIFO: the oldest trace is evicted first.
const traceRingCapacity = 128

// lifecycle is the server's drain-aware state machine. Transitions are
// strictly monotonic — starting → ready → draining → stopped — so a
// late readiness flip can never resurrect a draining server in a load
// balancer's eyes. /healthz is liveness (the process is up and can
// answer) and stays 200 through every state; /readyz is readiness (the
// process wants new traffic) and answers 200 only in ready.
type lifecycle int32

const (
	lifecycleStarting lifecycle = iota
	lifecycleReady
	lifecycleDraining
	lifecycleStopped
)

func (l lifecycle) String() string {
	switch l {
	case lifecycleStarting:
		return "starting"
	case lifecycleReady:
		return "ready"
	case lifecycleDraining:
		return "draining"
	default:
		return "stopped"
	}
}

// Config collects the operational knobs of the service. The zero value is
// usable: every field falls back to the documented default.
type Config struct {
	// Addr is the listen address for ListenAndServe ("" means ":8087").
	Addr string
	// RequestTimeout bounds each model-evaluating request's context
	// (default 15s). /healthz and /metrics are exempt: observability must
	// answer even when the model paths are saturated.
	RequestTimeout time.Duration
	// ShutdownTimeout bounds connection draining during graceful shutdown
	// (default 10s).
	ShutdownTimeout time.Duration
	// MaxInFlight caps concurrently served model requests; excess requests
	// receive 429 with Retry-After (default 4 × GOMAXPROCS).
	MaxInFlight int
	// MaxBodyBytes caps request body size (default 1 MiB); larger bodies
	// receive 413.
	MaxBodyBytes int64
	// Logger receives structured request and lifecycle logs (default
	// slog.Default()).
	Logger *slog.Logger
	// JobDir is where sharded simulation jobs checkpoint ("" disables
	// checkpointing; job submissions with "checkpoint": true are then
	// rejected with 400).
	JobDir string
	// MaxJobs caps concurrently running simulation jobs (default 2);
	// excess submissions receive 429 jobs_saturated.
	MaxJobs int
	// Peers lists other nanocostd replicas (host:port) whose distributed
	// jobs this daemon's worker loop pulls shards from. Setting any peer
	// also enables DistributeJobs, so a mesh of replicas pointed at each
	// other shares every job.
	Peers []string
	// DistributeJobs runs this daemon's jobs through the shard-lease
	// coordinator, exposing them at /v1/jobs/open for peer workers.
	// Implied by a non-empty Peers; set it alone for a coordinator whose
	// workers live elsewhere.
	DistributeJobs bool
	// LeaseTTL is the distributed shard-lease lifetime (default 10s): a
	// worker renews at TTL/3, and a dead worker's shards are re-granted
	// one TTL after its last renewal.
	LeaseTTL time.Duration
	// WorkerID names this replica in lease tables (default "host:pid").
	WorkerID string
	// JobWorkers sizes the local evaluation loop of distributed jobs:
	// 0 = parallel.DefaultWorkers, -1 = no local evaluation (a pure
	// coordinator that only merges remote uploads). Ignored for
	// non-distributed jobs, which always use the worker pool default.
	JobWorkers int
}

// withDefaults resolves the zero-value fallbacks.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8087"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.ShutdownTimeout <= 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if len(c.Peers) > 0 {
		c.DistributeJobs = true
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.WorkerID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "nanocostd"
		}
		c.WorkerID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	return c
}

// Server is the nanocostd HTTP service. Construct with NewServer; drive
// with ListenAndServe/Serve (blocking, context-cancelled) or mount
// Handler on a test server.
type Server struct {
	cfg        Config
	log        *slog.Logger
	mux        *http.ServeMux
	handler    http.Handler // mux wrapped in the observe middleware
	metrics    *metrics
	tracer     *obs.Tracer
	jobs       *jobManager
	worker     *worker
	sem        chan struct{}
	retryAfter string       // 429 Retry-After, derived from RequestTimeout
	addr       atomic.Value // string: bound listen address, set once serving
	state      atomic.Int32 // lifecycle; moves forward only (advanceState)
}

// NewServer builds a Server from cfg (zero fields take defaults).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
		metrics: newMetrics(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		// A saturated server drains at the pace of its slowest admitted
		// requests, which the request timeout bounds — so that, rounded up
		// to a whole second, is the honest back-off hint. A hard-coded "1"
		// would invite clients to hammer a server whose queue cannot have
		// moved yet.
		retryAfter: strconv.Itoa(max(1, int(math.Ceil(cfg.RequestTimeout.Seconds())))),
	}
	s.tracer = obs.NewTracer(traceRingCapacity, s.metrics.spanSeconds)
	s.tracer.RegisterMetrics(s.metrics.reg)
	s.jobs = newJobManager(cfg, s.metrics, s.log)
	s.jobs.tracer = s.tracer
	if len(cfg.Peers) > 0 {
		s.worker = newWorker(cfg, s.metrics, s.log)
		s.worker.tracer = s.tracer
		s.worker.start()
	}
	s.routes()
	s.handler = s.observe(s.mux)
	return s
}

// Handler returns the service's root handler, for httptest mounting.
func (s *Server) Handler() http.Handler { return s.handler }

// advanceState moves the lifecycle monotonically forward and reports
// whether the transition happened. Out-of-order calls lose: a server
// that began draining can never flip back to ready.
func (s *Server) advanceState(to lifecycle) bool {
	for {
		cur := lifecycle(s.state.Load())
		if to <= cur {
			return false
		}
		if s.state.CompareAndSwap(int32(cur), int32(to)) {
			return true
		}
	}
}

// Lifecycle returns the server's current drain-aware state.
func (s *Server) Lifecycle() string { return lifecycle(s.state.Load()).String() }

// MarkReady flips a starting server to ready. Serve does this itself the
// moment its listener is up; the method exists for Handler-mounted
// servers (tests, embedding) that never call Serve but still want
// /readyz to answer 200.
func (s *Server) MarkReady() { s.advanceState(lifecycleReady) }

// Addr returns the bound listen address once Serve has started listening,
// or "" before that. It exists so tests and the smoke script can reach a
// server started on an ephemeral port.
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ListenAndServe listens on cfg.Addr and serves until ctx is cancelled,
// then drains in-flight connections for up to cfg.ShutdownTimeout before
// returning. It returns nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is cancelled, then performs the graceful
// drain. The listener is closed when Serve returns.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.addr.Store(ln.Addr().String())
	s.advanceState(lifecycleReady)
	s.log.Info("nanocostd listening",
		"addr", ln.Addr().String(),
		"request_timeout", s.cfg.RequestTimeout.String(),
		"max_in_flight", s.cfg.MaxInFlight)
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		// Serve only returns on listener failure here; Shutdown was not
		// requested yet.
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	// Flip readiness first: from here on /readyz answers 503, so a load
	// balancer polling it stops routing new work while Shutdown drains the
	// connections that are already in flight.
	s.advanceState(lifecycleDraining)
	s.log.Info("nanocostd draining", "timeout", s.cfg.ShutdownTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	<-done // srv.Serve returns http.ErrServerClosed after Shutdown
	// Stop background simulation jobs and the peer worker loop only
	// after the HTTP side has drained, so in-flight status requests see
	// consistent state. A checkpointing job cancelled here resumes from
	// its shard log on the next submit.
	s.stopBackground()
	s.advanceState(lifecycleStopped)
	if err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	s.log.Info("nanocostd stopped")
	return nil
}

// Close cancels any background simulation jobs and the peer worker
// loop and waits briefly for them to settle. Serve does this itself
// after draining; Close exists for Handler-mounted servers (tests) that
// never call Serve.
func (s *Server) Close() { s.stopBackground() }

// stopBackground stops the peer worker loop, then drains the job
// manager. Idempotent.
func (s *Server) stopBackground() {
	if s.worker != nil {
		s.worker.stop()
	}
	s.jobs.shutdown(s.cfg.ShutdownTimeout)
}

// routes wires the endpoint table. Model-evaluating routes go through
// handle (semaphore + timeout + metrics + logging); the observability
// routes bypass the semaphore and timeout.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/cost", s.handle("/v1/cost", s.handleCost))
	s.mux.HandleFunc("POST /v1/designcost", s.handle("/v1/designcost", s.handleDesignCost))
	s.mux.HandleFunc("POST /v1/generalized", s.handle("/v1/generalized", s.handleGeneralized))
	s.mux.HandleFunc("POST /v1/sweep", s.handle("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("POST /v1/batch", s.handle("/v1/batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/figures/{id}", s.handle("/v1/figures/{id}", s.handleFigure))
	s.mux.HandleFunc("POST /v1/jobs", s.handle("/v1/jobs", s.handleJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs/open", s.handle("/v1/jobs/open", s.handleJobsOpen))
	s.mux.HandleFunc("POST /v1/jobs/{id}/lease", s.handle("/v1/jobs/{id}/lease", s.handleJobLease))
	s.mux.HandleFunc("POST /v1/jobs/{id}/partials", s.handleCap("/v1/jobs/{id}/partials", maxPartialsBodyBytes, s.handleJobPartials))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handle("/v1/jobs/{id}", s.handleJobStatus))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handle("/v1/jobs/{id}/result", s.handleJobResult))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handle("/v1/jobs/{id}/events", s.handleJobEvents))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handle("/v1/jobs/{id}", s.handleJobCancel))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &apiError{status: http.StatusNotFound, code: "not_found",
			err: fmt.Errorf("no route %s %s", r.Method, r.URL.Path)})
	})
}

// apiError couples an error with the HTTP status and machine-readable code
// the response body carries.
type apiError struct {
	status int
	code   string
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

// badRequest wraps a model-validation error as a 400. Errors tagged
// core.ErrOutOfDomain keep their sharper "out_of_domain" code so sweep
// drivers can distinguish a mathematically impossible point from a
// malformed request.
func badRequest(err error) *apiError {
	code := "invalid_request"
	if errors.Is(err, core.ErrOutOfDomain) {
		code = "out_of_domain"
	}
	return &apiError{status: http.StatusBadRequest, code: code, err: err}
}

// asAPIError maps any handler error to the apiError that renders it.
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return &apiError{status: http.StatusRequestEntityTooLarge, code: "body_too_large", err: err}
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{status: http.StatusGatewayTimeout, code: "timeout", err: err}
	case errors.Is(err, core.ErrOutOfDomain):
		return badRequest(err)
	default:
		return &apiError{status: http.StatusInternalServerError, code: "internal", err: err}
	}
}

// errorBody is the machine-readable error envelope of every non-2xx
// response. RequestID repeats the response's X-Request-Id header so a
// client that only kept the body can still report the failure.
type errorBody struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"request_id,omitempty"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, ae *apiError) {
	var body errorBody
	body.Error.Code = ae.code
	body.Error.Message = ae.err.Error()
	body.Error.RequestID = w.Header().Get("X-Request-Id")
	writeJSON(w, ae.status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the response types used here (all fields are
		// finite-validated before encoding), but never reply with half a
		// body: fall back to a minimal envelope.
		status = http.StatusInternalServerError
		buf = []byte(`{"error":{"code":"internal","message":"response encoding failed"}}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

// statusRecorder captures the response status and byte count for metrics
// and logs, and remembers whether the header went out — once it has, error
// mapping must not append an error envelope to a half-written stream.
// The observe middleware creates one per request; handle() annotates it
// with the route pattern and any handler error for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
	bytes       int64
	route       string // registered route pattern, set by handle()
	logErr      error  // handler error, carried to the access-log line
}

func (r *statusRecorder) WriteHeader(status int) {
	if !r.wroteHeader {
		r.status = status
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wroteHeader {
		// net/http sends an implicit 200 on first Write; record it so
		// streamed responses whose handler never calls WriteHeader report
		// 200 instead of 0 in logs and the per-route counter.
		r.status = http.StatusOK
		r.wroteHeader = true
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush passes through to the underlying http.Flusher so NDJSON streaming
// handlers can push each chunk onto the wire. Without this the recorder
// would mask the Flusher interface and every "streaming" response would be
// buffered until the handler returned.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// wroteResponse is the sentinel a handler returns when it already wrote
// the response itself (streaming, 304 and cached-bytes paths); the
// middleware then skips the default JSON encoding.
type wroteResponse struct{}

// handlerFunc is a model-evaluating endpoint: it returns a response value
// to encode as 200 (or wroteResponse if it wrote its own), or an error
// that asAPIError maps to a status.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (any, error)

// handle is the middleware stack of every model-evaluating route:
// concurrency semaphore (429 + Retry-After on saturation), in-flight
// gauge, request body cap, per-request timeout and error mapping. The
// surrounding observe middleware owns the recorder, metrics and the
// access log; handle annotates the recorder with the route pattern and
// any handler error.
func (s *Server) handle(route string, h handlerFunc) http.HandlerFunc {
	return s.handleCap(route, 0, h)
}

// handleCap is handle with a route-specific request body cap (<= 0
// falls back to cfg.MaxBodyBytes). Shard-partial uploads need it: one
// shard of a giga-trial job carries far more chunk tallies than any
// model request body.
func (s *Server) handleCap(route string, bodyCap int64, h handlerFunc) http.HandlerFunc {
	if bodyCap <= 0 {
		bodyCap = s.cfg.MaxBodyBytes
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rec, ok := w.(*statusRecorder)
		if !ok {
			// Direct invocation outside the middleware (not the served
			// path); keep working rather than assuming.
			rec = &statusRecorder{ResponseWriter: w}
		}
		rec.route = route

		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			rec.Header().Set("Retry-After", s.retryAfter)
			writeError(rec, &apiError{status: http.StatusTooManyRequests, code: "saturated",
				err: fmt.Errorf("server at its %d-request concurrency limit", s.cfg.MaxInFlight)})
			return
		}

		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(rec, r.Body, bodyCap)

		v, err := h(rec, r)
		if err == nil && ctx.Err() != nil && !rec.wroteHeader {
			// The handler finished but the deadline passed (or the client
			// left) before anything went out: report the truth rather than
			// a half-written success. A response that already streamed is
			// left as the bytes on the wire tell it.
			err = ctx.Err()
		}
		if err != nil {
			rec.logErr = err
			switch {
			case errors.Is(err, context.Canceled):
				// The client is gone; nothing useful can be written. Record
				// the nonstandard-but-conventional 499 for the logs.
				rec.status = 499
			case !rec.wroteHeader:
				writeError(rec, asAPIError(err))
			default:
				// Mid-stream failure after bytes were flushed: the response
				// cannot be rewritten, so the truncated stream plus the
				// access log's error attribute carry the story.
			}
			return
		}
		if _, wrote := v.(wroteResponse); !wrote {
			writeJSON(rec, http.StatusOK, v)
		}
	}
}

// observe is the outermost middleware, wrapping every route including the
// observability endpoints: it owns the status recorder, assigns or echoes
// X-Request-Id, opens the root trace span (honoring a sanitized incoming
// X-Trace-Id and returning the ID on the response), records the per-route
// counters and latency histogram, and emits exactly one structured
// access-log line per request — including streamed/NDJSON responses and
// requests no handler matched.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}

		reqID := obs.SanitizeID(r.Header.Get("X-Request-Id"))
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		rec.Header().Set("X-Request-Id", reqID)

		var span *obs.Span
		if shouldTrace(r.URL.Path) {
			var ctx context.Context
			ctx, span = s.tracer.StartRootWithParent(r.Context(),
				obs.SanitizeID(r.Header.Get("X-Trace-Id")),
				obs.SanitizeID(r.Header.Get("X-Parent-Span-Id")), "serve.request")
			span.SetAttr("method", r.Method)
			span.SetAttr("path", r.URL.Path)
			rec.Header().Set("X-Trace-Id", span.TraceID())
			r = r.WithContext(ctx)
		}

		next.ServeHTTP(rec, r)

		status := rec.status
		if status == 0 {
			// The handler wrote neither header nor body; the wire carries
			// an implicit 200, so report that instead of a phantom 0.
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		route := rec.route
		if route == "" {
			route = fallbackRoute(r.URL.Path)
		}
		s.metrics.observe(route, status, elapsed.Seconds())

		if span != nil {
			span.SetAttr("status", strconv.Itoa(status))
			span.End()
		}

		level := slog.LevelInfo
		switch {
		case status >= 500:
			level = slog.LevelError
		case status >= 400:
			level = slog.LevelWarn
		}
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", status),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
			slog.String("request_id", reqID),
		}
		if span != nil {
			attrs = append(attrs, slog.String("trace_id", span.TraceID()))
		}
		if rec.logErr != nil {
			attrs = append(attrs, slog.String("error", rec.logErr.Error()))
		}
		s.log.LogAttrs(r.Context(), level, "request", attrs...)
	})
}

// shouldTrace reports whether a path gets a root span. The observability
// endpoints are exempt: scrapes and trace lookups polling the server must
// not fill the trace ring with records of themselves.
func shouldTrace(path string) bool {
	return path != "/healthz" && path != "/readyz" && path != "/metrics" &&
		!strings.HasPrefix(path, "/debug/")
}

// fallbackRoute labels requests that never reached handle(): the
// observability endpoints and unmatched paths. Raw URLs are unbounded, so
// anything unknown collapses into one label value.
func fallbackRoute(path string) string {
	switch {
	case path == "/healthz" || path == "/readyz" || path == "/metrics":
		return path
	case strings.HasPrefix(path, "/debug/trace/"):
		return "/debug/trace/{id}"
	default:
		return "unmatched"
	}
}

// handleHealthz is liveness: the process is up and the HTTP stack can
// answer. It stays 200 through every lifecycle state — a draining server
// is alive; restarting it because readiness went away would turn every
// deploy into a crash loop. The current state rides along for operators.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "state": s.Lifecycle()})
}

// handleReadyz is readiness: 200 exactly while the server wants new
// traffic. Load balancers (nanocostfront among them) poll this to decide
// routing; starting and draining both answer 503 with a short Retry-After
// so a rolling restart sheds traffic before connections are cut.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state := lifecycle(s.state.Load())
	if state == lifecycleReady {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": state.String()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeTo(w)
}

// traceResponse is the GET /debug/trace/{id} payload: the span tree of a
// recently completed traced request.
type traceResponse struct {
	TraceID      string          `json:"trace_id"`
	DroppedSpans int             `json:"dropped_spans,omitempty"`
	Spans        []*obs.SpanTree `json:"spans"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	raw := trimmedPathValue(r, "id")
	id := obs.SanitizeID(raw)
	trace, ok := s.tracer.Lookup(id)
	if id == "" || !ok {
		writeError(w, &apiError{status: http.StatusNotFound, code: "trace_not_found",
			err: fmt.Errorf("no recorded trace %q (the ring keeps the last %d traces)", raw, traceRingCapacity)})
		return
	}
	writeJSON(w, http.StatusOK, traceResponse{
		TraceID:      trace.TraceID,
		DroppedSpans: trace.DroppedSpans,
		Spans:        trace.Tree(),
	})
}

// decodeJSON strictly decodes the request body into T: unknown fields,
// trailing garbage, malformed JSON and oversized bodies are all rejected
// with the status asAPIError assigns.
func decodeJSON[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return v, err
		}
		return v, &apiError{status: http.StatusBadRequest, code: "invalid_request",
			err: fmt.Errorf("malformed request body: %w", err)}
	}
	if dec.More() {
		return v, &apiError{status: http.StatusBadRequest, code: "invalid_request",
			err: errors.New("request body contains trailing data")}
	}
	return v, nil
}

// trimmedPathValue returns the {name} path segment without surrounding
// whitespace.
func trimmedPathValue(r *http.Request, name string) string {
	return strings.TrimSpace(r.PathValue(name))
}
