// Package serve exposes the repository's cost models (Maly eq (1)–(7)) as
// a long-running HTTP/JSON service — the nanocostd daemon. The package is
// the production front-end the ROADMAP asks for: strict request validation
// that maps model-domain errors (the eq (6) pole at s_d ≤ s_d0, invalid
// yields, NaN-poisoned parameters) to 400 responses instead of 500s or
// NaN-bearing JSON, per-request timeouts, bounded concurrency with 429
// backpressure, request body size limits, graceful connection-draining
// shutdown, and an observability surface (/healthz, /metrics with request
// counters, a latency histogram, an in-flight gauge and the memo cache hit
// rates, plus structured request logging via log/slog).
//
// Routes:
//
//	POST /v1/cost          eq (1)–(5): full transistor-cost breakdown
//	POST /v1/designcost    eq (6): design cost C_DE and its marginal
//	POST /v1/generalized   eq (7): utilization + pluggable yield model
//	POST /v1/sweep         parameter sweeps over s_d, N_w or Y
//	POST /v1/batch         heterogeneous batch of cost/designcost/generalized
//	GET  /v1/figures/{id}  paper-figure data series (1–4), memoized
//	GET  /healthz          liveness probe
//	GET  /metrics          Prometheus text exposition
//
// /v1/sweep and /v1/figures/{id} answer with NDJSON streaming (one JSON
// value per line, flushed chunk by chunk) when the request carries
// "Accept: application/x-ndjson". Figure responses are served with strong
// ETags derived from the memoized content, so a matching If-None-Match
// costs a hash compare (304) instead of a regeneration.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config collects the operational knobs of the service. The zero value is
// usable: every field falls back to the documented default.
type Config struct {
	// Addr is the listen address for ListenAndServe ("" means ":8087").
	Addr string
	// RequestTimeout bounds each model-evaluating request's context
	// (default 15s). /healthz and /metrics are exempt: observability must
	// answer even when the model paths are saturated.
	RequestTimeout time.Duration
	// ShutdownTimeout bounds connection draining during graceful shutdown
	// (default 10s).
	ShutdownTimeout time.Duration
	// MaxInFlight caps concurrently served model requests; excess requests
	// receive 429 with Retry-After (default 4 × GOMAXPROCS).
	MaxInFlight int
	// MaxBodyBytes caps request body size (default 1 MiB); larger bodies
	// receive 413.
	MaxBodyBytes int64
	// Logger receives structured request and lifecycle logs (default
	// slog.Default()).
	Logger *slog.Logger
}

// withDefaults resolves the zero-value fallbacks.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8087"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.ShutdownTimeout <= 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the nanocostd HTTP service. Construct with NewServer; drive
// with ListenAndServe/Serve (blocking, context-cancelled) or mount
// Handler on a test server.
type Server struct {
	cfg        Config
	log        *slog.Logger
	mux        *http.ServeMux
	metrics    *metrics
	sem        chan struct{}
	retryAfter string       // 429 Retry-After, derived from RequestTimeout
	addr       atomic.Value // string: bound listen address, set once serving
}

// NewServer builds a Server from cfg (zero fields take defaults).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
		metrics: newMetrics(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		// A saturated server drains at the pace of its slowest admitted
		// requests, which the request timeout bounds — so that, rounded up
		// to a whole second, is the honest back-off hint. A hard-coded "1"
		// would invite clients to hammer a server whose queue cannot have
		// moved yet.
		retryAfter: strconv.Itoa(max(1, int(math.Ceil(cfg.RequestTimeout.Seconds())))),
	}
	s.routes()
	return s
}

// Handler returns the service's root handler, for httptest mounting.
func (s *Server) Handler() http.Handler { return s.mux }

// Addr returns the bound listen address once Serve has started listening,
// or "" before that. It exists so tests and the smoke script can reach a
// server started on an ephemeral port.
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ListenAndServe listens on cfg.Addr and serves until ctx is cancelled,
// then drains in-flight connections for up to cfg.ShutdownTimeout before
// returning. It returns nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is cancelled, then performs the graceful
// drain. The listener is closed when Serve returns.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.addr.Store(ln.Addr().String())
	s.log.Info("nanocostd listening",
		"addr", ln.Addr().String(),
		"request_timeout", s.cfg.RequestTimeout.String(),
		"max_in_flight", s.cfg.MaxInFlight)
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		// Serve only returns on listener failure here; Shutdown was not
		// requested yet.
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	s.log.Info("nanocostd draining", "timeout", s.cfg.ShutdownTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	<-done // srv.Serve returns http.ErrServerClosed after Shutdown
	if err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	s.log.Info("nanocostd stopped")
	return nil
}

// routes wires the endpoint table. Model-evaluating routes go through
// handle (semaphore + timeout + metrics + logging); the observability
// routes bypass the semaphore and timeout.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/cost", s.handle("/v1/cost", s.handleCost))
	s.mux.HandleFunc("POST /v1/designcost", s.handle("/v1/designcost", s.handleDesignCost))
	s.mux.HandleFunc("POST /v1/generalized", s.handle("/v1/generalized", s.handleGeneralized))
	s.mux.HandleFunc("POST /v1/sweep", s.handle("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("POST /v1/batch", s.handle("/v1/batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/figures/{id}", s.handle("/v1/figures/{id}", s.handleFigure))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &apiError{status: http.StatusNotFound, code: "not_found",
			err: fmt.Errorf("no route %s %s", r.Method, r.URL.Path)})
	})
}

// apiError couples an error with the HTTP status and machine-readable code
// the response body carries.
type apiError struct {
	status int
	code   string
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

// badRequest wraps a model-validation error as a 400. Errors tagged
// core.ErrOutOfDomain keep their sharper "out_of_domain" code so sweep
// drivers can distinguish a mathematically impossible point from a
// malformed request.
func badRequest(err error) *apiError {
	code := "invalid_request"
	if errors.Is(err, core.ErrOutOfDomain) {
		code = "out_of_domain"
	}
	return &apiError{status: http.StatusBadRequest, code: code, err: err}
}

// asAPIError maps any handler error to the apiError that renders it.
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return &apiError{status: http.StatusRequestEntityTooLarge, code: "body_too_large", err: err}
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{status: http.StatusGatewayTimeout, code: "timeout", err: err}
	case errors.Is(err, core.ErrOutOfDomain):
		return badRequest(err)
	default:
		return &apiError{status: http.StatusInternalServerError, code: "internal", err: err}
	}
}

// errorBody is the machine-readable error envelope of every non-2xx
// response.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, ae *apiError) {
	var body errorBody
	body.Error.Code = ae.code
	body.Error.Message = ae.err.Error()
	writeJSON(w, ae.status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the response types used here (all fields are
		// finite-validated before encoding), but never reply with half a
		// body: fall back to a minimal envelope.
		status = http.StatusInternalServerError
		buf = []byte(`{"error":{"code":"internal","message":"response encoding failed"}}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

// statusRecorder captures the response status and byte count for metrics
// and logs, and remembers whether the header went out — once it has, error
// mapping must not append an error envelope to a half-written stream.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
	bytes       int64
}

func (r *statusRecorder) WriteHeader(status int) {
	if !r.wroteHeader {
		r.status = status
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wroteHeader = true // net/http sends an implicit 200 on first Write
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush passes through to the underlying http.Flusher so NDJSON streaming
// handlers can push each chunk onto the wire. Without this the recorder
// would mask the Flusher interface and every "streaming" response would be
// buffered until the handler returned.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// wroteResponse is the sentinel a handler returns when it already wrote
// the response itself (streaming, 304 and cached-bytes paths); the
// middleware then skips the default JSON encoding.
type wroteResponse struct{}

// handlerFunc is a model-evaluating endpoint: it returns a response value
// to encode as 200 (or wroteResponse if it wrote its own), or an error
// that asAPIError maps to a status.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (any, error)

// handle is the middleware stack of every model-evaluating route:
// in-flight gauge, concurrency semaphore (429 + Retry-After on
// saturation), request body cap, per-request timeout, error mapping,
// metrics and structured logging.
func (s *Server) handle(route string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			w.Header().Set("Retry-After", s.retryAfter)
			writeError(rec, &apiError{status: http.StatusTooManyRequests, code: "saturated",
				err: fmt.Errorf("server at its %d-request concurrency limit", s.cfg.MaxInFlight)})
			s.finish(r, route, rec.status, start)
			return
		}

		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		v, err := h(rec, r)
		if err == nil && ctx.Err() != nil && !rec.wroteHeader {
			// The handler finished but the deadline passed (or the client
			// left) before anything went out: report the truth rather than
			// a half-written success. A response that already streamed is
			// left as the bytes on the wire tell it.
			err = ctx.Err()
		}
		if err != nil {
			switch {
			case errors.Is(err, context.Canceled):
				// The client is gone; nothing useful can be written. Record
				// the nonstandard-but-conventional 499 for the logs.
				rec.status = 499
			case !rec.wroteHeader:
				writeError(rec, asAPIError(err))
			default:
				// Mid-stream failure after bytes were flushed: the response
				// cannot be rewritten, so the truncated stream plus the log
				// line carry the story.
				s.log.LogAttrs(r.Context(), slog.LevelWarn, "stream aborted",
					slog.String("route", route), slog.String("error", err.Error()))
			}
			s.finish(r, route, rec.status, start)
			return
		}
		if _, wrote := v.(wroteResponse); !wrote {
			writeJSON(rec, http.StatusOK, v)
		}
		s.finish(r, route, rec.status, start)
	}
}

// finish records metrics and emits the structured request log line.
func (s *Server) finish(r *http.Request, route string, status int, start time.Time) {
	elapsed := time.Since(start)
	s.metrics.observe(route, status, elapsed.Seconds())
	level := slog.LevelInfo
	switch {
	case status >= 500:
		level = slog.LevelError
	case status >= 400:
		level = slog.LevelWarn
	}
	s.log.LogAttrs(r.Context(), level, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("route", route),
		slog.Int("status", status),
		slog.Duration("elapsed", elapsed),
		slog.String("remote", r.RemoteAddr),
	)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeTo(w)
}

// decodeJSON strictly decodes the request body into T: unknown fields,
// trailing garbage, malformed JSON and oversized bodies are all rejected
// with the status asAPIError assigns.
func decodeJSON[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return v, err
		}
		return v, &apiError{status: http.StatusBadRequest, code: "invalid_request",
			err: fmt.Errorf("malformed request body: %w", err)}
	}
	if dec.More() {
		return v, &apiError{status: http.StatusBadRequest, code: "invalid_request",
			err: errors.New("request body contains trailing data")}
	}
	return v, nil
}

// trimmedPathValue returns the {name} path segment without surrounding
// whitespace.
func trimmedPathValue(r *http.Request, name string) string {
	return strings.TrimSpace(r.PathValue(name))
}
