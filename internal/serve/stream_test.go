package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWantsNDJSON(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"application/json", false},
		{"application/x-ndjson", true},
		{"Application/X-NDJSON", true},
		{"application/json, application/x-ndjson;q=0.9", true},
		{" application/x-ndjson ; charset=utf-8", true},
		{"application/x-ndjson-like", false},
	}
	for _, c := range cases {
		r := httptest.NewRequest("GET", "/", nil)
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		if got := wantsNDJSON(r); got != c.want {
			t.Errorf("wantsNDJSON(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

// TestStatusRecorderFlusherPassthrough: the middleware's recorder must not
// mask http.Flusher, or every "streamed" response would buffer until the
// handler returned.
func TestStatusRecorderFlusherPassthrough(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: rec, status: http.StatusOK}
	var w http.ResponseWriter = sr
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not expose http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
	if sr.Unwrap() != rec {
		t.Fatal("Unwrap does not return the wrapped writer")
	}
}

// TestSweepNDJSONMatchesBufferedSweep: the streamed lines carry exactly
// the points of the buffered JSON response, in grid order, with the
// negotiated content type.
func TestSweepNDJSONMatchesBufferedSweep(t *testing.T) {
	s := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"scenario":%s,"variable":"sd","lo":200,"hi":2000,"points":150}`, validScenario)

	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := bytes.Split(bytes.TrimSuffix(rec.Body.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 150 {
		t.Fatalf("streamed %d lines, want 150", len(lines))
	}

	code, _, buffered := rawDo(t, s, "POST", "/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("buffered status = %d", code)
	}
	var resp struct {
		Points []json.RawMessage `json:"points"`
	}
	if err := json.Unmarshal(buffered, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != len(lines) {
		t.Fatalf("buffered %d points, streamed %d", len(resp.Points), len(lines))
	}
	for i := range lines {
		if !bytes.Equal(lines[i], resp.Points[i]) {
			t.Fatalf("point %d differs:\nstream: %s\nbuffer: %s", i, lines[i], resp.Points[i])
		}
	}
	if s.metrics.streamedBytes.Value() == 0 {
		t.Fatal("streamed-bytes metric not incremented")
	}
}

// TestSweepNDJSONValidationStill400: errors caught before the first chunk
// keep their request-level status even under streaming negotiation.
func TestSweepNDJSONValidationStill400(t *testing.T) {
	s := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"scenario":%s,"variable":"sd","lo":50,"hi":2000,"points":8}`, validScenario)
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("non-JSON error body: %s", rec.Body.String())
	}
	if got := errCode(t, out); got != "out_of_domain" {
		t.Fatalf("error code = %q, want out_of_domain", got)
	}
}

// cancelOnFirstWrite simulates a client that disconnects as soon as the
// stream starts: the first body write cancels the request context, exactly
// what net/http does to r.Context() when the peer goes away.
type cancelOnFirstWrite struct {
	http.ResponseWriter
	cancel context.CancelFunc
	once   bool
}

func (c *cancelOnFirstWrite) Write(b []byte) (int, error) {
	if !c.once {
		c.once = true
		c.cancel()
	}
	return c.ResponseWriter.Write(b)
}

// TestSweepNDJSONClientCancelMidStream: a client that disconnects
// mid-stream must terminate the handler promptly — remaining grid chunks
// skipped, in-flight gauge drained (no leaked worker), 499 recorded —
// instead of evaluating the rest of the sweep for nobody.
func TestSweepNDJSONClientCancelMidStream(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: time.Minute})
	const points = 4096
	body := fmt.Sprintf(`{"scenario":%s,"variable":"sd","lo":200,"hi":2000,"points":%d}`, validScenario, points)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(&cancelOnFirstWrite{ResponseWriter: rec, cancel: cancel}, req)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream handler did not terminate after client cancel")
	}

	lines := bytes.Count(rec.Body.Bytes(), []byte("\n"))
	if lines == 0 {
		t.Fatal("stream never started")
	}
	if lines >= points {
		t.Fatalf("sweep ran to completion (%d lines) despite the cancel", lines)
	}
	if got := s.metrics.inFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge = %d after handler returned: worker leaked", got)
	}
	cancelled := s.metrics.requests.Value("/v1/sweep", "499")
	if cancelled != 1 {
		t.Fatalf("499 count = %d, want 1", cancelled)
	}
}

// TestFigureETagRevalidation: figure responses carry a strong ETag and
// Cache-Control; a matching If-None-Match answers 304 with no body, and
// distinct resolutions get distinct tags.
func TestFigureETagRevalidation(t *testing.T) {
	s := newTestServer(t, Config{})
	code, hdr, body := rawDo(t, s, "GET", "/v1/figures/1", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	etag := hdr.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || strings.HasPrefix(etag, "W/") {
		t.Fatalf("ETag = %q, want a strong entity tag", etag)
	}
	if cc := hdr.Get("Cache-Control"); !strings.Contains(cc, "max-age") {
		t.Fatalf("Cache-Control = %q", cc)
	}
	if !json.Valid(body) {
		t.Fatalf("figure body not JSON: %s", body[:min(len(body), 80)])
	}

	req := httptest.NewRequest("GET", "/v1/figures/1", nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("304 carried a body: %s", rec.Body.String())
	}
	if rec.Header().Get("ETag") != etag {
		t.Fatalf("304 ETag = %q, want %q", rec.Header().Get("ETag"), etag)
	}

	// A fresh fetch with the same tag in a list still revalidates; a stale
	// tag does not.
	req = httptest.NewRequest("GET", "/v1/figures/1", nil)
	req.Header.Set("If-None-Match", `"deadbeef", `+etag)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("list revalidation status = %d, want 304", rec.Code)
	}
	req = httptest.NewRequest("GET", "/v1/figures/1", nil)
	req.Header.Set("If-None-Match", `"deadbeef"`)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stale-tag status = %d, want 200", rec.Code)
	}

	// Distinct resolutions are distinct representations of Figure 4.
	_, hdr48, _ := rawDo(t, s, "GET", "/v1/figures/4?points=48", "")
	_, hdr96, _ := rawDo(t, s, "GET", "/v1/figures/4?points=96", "")
	if hdr48.Get("ETag") == hdr96.Get("ETag") {
		t.Fatal("different Figure 4 resolutions share an ETag")
	}
	// Figures 1–3 ignore ?points=, so the tag (and cache slot) must not
	// fragment by resolution.
	_, hdrP, _ := rawDo(t, s, "GET", "/v1/figures/1?points=96", "")
	if hdrP.Get("ETag") != etag {
		t.Fatal("?points= forked the ETag of a figure that ignores it")
	}
}

// TestFigureNDJSONStreaming: the NDJSON representation carries one figure
// per line with its own strong ETag, and revalidates independently.
func TestFigureNDJSONStreaming(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest("GET", "/v1/figures/4", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := bytes.Split(bytes.TrimSuffix(rec.Body.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("Figure 4 streamed %d lines, want its 2 panels", len(lines))
	}
	for i, line := range lines {
		var fig figureJSON
		if err := json.Unmarshal(line, &fig); err != nil {
			t.Fatalf("line %d is not one figure: %v", i, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("line %d carries no series", i)
		}
	}
	ndTag := rec.Header().Get("ETag")
	_, jsonHdr, _ := rawDo(t, s, "GET", "/v1/figures/4", "")
	if ndTag == "" || ndTag == jsonHdr.Get("ETag") {
		t.Fatalf("NDJSON ETag %q must exist and differ from the JSON representation's %q",
			ndTag, jsonHdr.Get("ETag"))
	}
	req = httptest.NewRequest("GET", "/v1/figures/4", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	req.Header.Set("If-None-Match", ndTag)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("NDJSON revalidation = %d, want 304", rec.Code)
	}
}

// TestFigurePointsBounds is the regression table for the ?points= query
// parameter: the one GET input that sizes an allocation must be bounded
// like POST bodies are, with 400 on everything outside [2, maxFigurePoints].
func TestFigurePointsBounds(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		raw      string
		wantCode int
	}{
		{"", http.StatusOK}, // default resolution
		{"?points=2", http.StatusOK},
		{"?points=48", http.StatusOK},
		{"?points=10000", http.StatusOK},
		{"?points=1", http.StatusBadRequest},
		{"?points=0", http.StatusBadRequest},
		{"?points=-1", http.StatusBadRequest},
		{"?points=-999999999", http.StatusBadRequest},
		{"?points=10001", http.StatusBadRequest},
		{"?points=999999999999999999999999", http.StatusBadRequest}, // overflows int
		{"?points=abc", http.StatusBadRequest},
		{"?points=4.5", http.StatusBadRequest},
		{"?points=1e3", http.StatusBadRequest},
		{"?points=+48x", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run("points"+c.raw, func(t *testing.T) {
			// Figure 2 is cheap and ignores the resolution, so even the
			// accepted values answer fast; the guard must trigger on the
			// parameter alone, before any model work.
			code, _, body := rawDo(t, s, "GET", "/v1/figures/2"+c.raw, "")
			if code != c.wantCode {
				t.Fatalf("GET /v1/figures/2%s = %d, want %d\n%s", c.raw, code, c.wantCode, body)
			}
			if c.wantCode == http.StatusBadRequest {
				var out map[string]any
				if err := json.Unmarshal(body, &out); err != nil {
					t.Fatalf("error body not JSON: %s", body)
				}
				if got := errCode(t, out); got != "invalid_request" {
					t.Fatalf("error code = %q, want invalid_request", got)
				}
			}
		})
	}
}

// TestRetryAfterDerivedFromTimeout is the regression test for the
// hard-coded "Retry-After: 1": the hint must scale with the configured
// request timeout, since that bounds how long the pool can stay saturated.
func TestRetryAfterDerivedFromTimeout(t *testing.T) {
	cases := []struct {
		timeout time.Duration
		want    string
	}{
		{2500 * time.Millisecond, "3"}, // rounds up to whole seconds
		{30 * time.Second, "30"},
		{200 * time.Millisecond, "1"}, // never below one second
		{0, "15"},                     // default RequestTimeout 15s
	}
	for _, c := range cases {
		s := newTestServer(t, Config{MaxInFlight: 1, RequestTimeout: c.timeout})
		for i := 0; i < cap(s.sem); i++ {
			s.sem <- struct{}{}
		}
		code, hdr, _ := rawDo(t, s, "POST", "/v1/cost", validScenario)
		if code != http.StatusTooManyRequests {
			t.Fatalf("timeout %v: status = %d, want 429", c.timeout, code)
		}
		if got := hdr.Get("Retry-After"); got != c.want {
			t.Fatalf("timeout %v: Retry-After = %q, want %q", c.timeout, got, c.want)
		}
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
	}
}
