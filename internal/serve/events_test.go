package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/mcjob"
)

// decodeEvents parses a /v1/jobs/{id}/events JSON snapshot.
func decodeEvents(t *testing.T, raw []byte) jobEventsJSON {
	t.Helper()
	var out jobEventsJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode events payload: %v\n%s", err, raw)
	}
	return out
}

// TestJobEventsTimeline: a completed local job's timeline starts with
// submitted, records one shard_merged per shard, and ends terminal, with
// strictly increasing sequence numbers throughout.
func TestJobEventsTimeline(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := `{"kind":"defect","trials":200000,"shards":4,"seed":7,"defect":{"lambda":1.3}}`
	code, _, body := do(t, s, "POST", "/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %v", code, body)
	}
	id := body["id"].(string)
	if fin := waitForJob(t, s, id); fin["state"] != "done" {
		t.Fatalf("final state = %v", fin["state"])
	}

	ecode, _, raw := rawDo(t, s, "GET", "/v1/jobs/"+id+"/events", "")
	if ecode != http.StatusOK {
		t.Fatalf("events = %d: %s", ecode, raw)
	}
	ev := decodeEvents(t, raw)
	if ev.ID != id || ev.State != "done" {
		t.Fatalf("events envelope = %+v", ev)
	}
	if len(ev.Events) == 0 {
		t.Fatal("no events recorded")
	}
	if ev.Events[0].Type != mcjob.EventSubmitted {
		t.Fatalf("first event = %q, want submitted", ev.Events[0].Type)
	}
	if last := ev.Events[len(ev.Events)-1]; last.Type != mcjob.EventCompleted {
		t.Fatalf("last event = %q, want completed", last.Type)
	}
	merged := 0
	lastSeq := int64(0)
	for i, e := range ev.Events {
		if e.Type == mcjob.EventShardMerged {
			merged++
		}
		if i > 0 && e.Seq <= lastSeq {
			t.Fatalf("event %d seq %d not increasing past %d", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
	}
	if merged != 4 {
		t.Fatalf("shard_merged events = %d, want 4", merged)
	}

	// Unknown job: 404 with the job error code.
	ecode, _, errBody := do(t, s, "GET", "/v1/jobs/0123456789abcdef/events", "")
	if ecode != http.StatusNotFound || errCode(t, errBody) != "job_not_found" {
		t.Fatalf("events on unknown job = %d %v", ecode, errBody)
	}
}

// TestJobEventsStreamEndsCancelled: the NDJSON event stream of a
// cancelled job terminates, and its final line is the cancelled event.
func TestJobEventsStreamEndsCancelled(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := `{"kind":"defect","trials":4000000000,"seed":3,"defect":{"lambda":0.9}}`
	code, _, body := do(t, s, "POST", "/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %v", code, body)
	}
	id := body["id"].(string)
	if dcode, _, dbody := do(t, s, "DELETE", "/v1/jobs/"+id, ""); dcode != http.StatusOK {
		t.Fatalf("cancel = %d %v", dcode, dbody)
	}
	if fin := waitForJob(t, s, id); fin["state"] != "cancelled" {
		t.Fatalf("state after cancel = %v", fin["state"])
	}

	scode, hdr, raw := doWithHeaders(t, s, "GET", "/v1/jobs/"+id+"/events", "",
		map[string]string{"Accept": "application/x-ndjson"})
	if scode != http.StatusOK {
		t.Fatalf("event stream = %d: %s", scode, raw)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("stream content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("empty event stream: %q", raw)
	}
	var last mcjob.Event
	for _, ln := range lines {
		var e mcjob.Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("stream line %q: %v", ln, err)
		}
		last = e
	}
	if last.Type != mcjob.EventCancelled {
		t.Fatalf("stream ends with %q, want cancelled", last.Type)
	}
}
