package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// discardLogger keeps request logs out of the test output.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	s := NewServer(cfg)
	t.Cleanup(s.Close)
	return s
}

// do runs one request through the handler stack and decodes the JSON body.
func do(t *testing.T, s *Server, method, target, body string) (int, http.Header, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	out := map[string]any{}
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: non-JSON body %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec.Code, rec.Result().Header, out
}

// errCode digs the machine-readable code out of an error envelope.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %v", body)
	}
	code, _ := env["code"].(string)
	return code
}

const validScenario = `{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":5000}`

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	code, _, body := do(t, s, "GET", "/healthz", "")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, body)
	}
}

func TestCostHappyPath(t *testing.T) {
	s := newTestServer(t, Config{})
	code, _, body := do(t, s, "POST", "/v1/cost", validScenario)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	b, ok := body["breakdown"].(map[string]any)
	if !ok {
		t.Fatalf("no breakdown in %v", body)
	}
	total, _ := b["total"].(float64)
	mfg, _ := b["manufacturing"].(float64)
	dm, _ := b["design_and_mask"].(float64)
	if !(total > 0) || math.IsInf(total, 0) {
		t.Fatalf("total = %v, want finite positive", total)
	}
	if math.Abs(total-(mfg+dm)) > 1e-12*total {
		t.Fatalf("total %v != manufacturing %v + design_and_mask %v", total, mfg, dm)
	}
}

// TestCostOutOfDomain is the acceptance gate: a request at the eq (6) pole
// answers 400 with a machine-readable code — never a 500 and never an Inf
// smuggled through the JSON encoder.
func TestCostOutOfDomain(t *testing.T) {
	s := newTestServer(t, Config{})
	req := `{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":90},"wafers":5000}`
	code, _, body := do(t, s, "POST", "/v1/cost", req)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %v)", code, body)
	}
	if got := errCode(t, body); got != "out_of_domain" {
		t.Fatalf("error code = %q, want out_of_domain", got)
	}
	raw, _ := json.Marshal(body)
	for _, poison := range []string{"Inf", "NaN"} {
		if strings.Contains(string(raw), poison) {
			t.Fatalf("response body leaked %s: %s", poison, raw)
		}
	}
}

func TestCostRejectsMalformedBodies(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"truncated", `{"process":{`},
		{"unknown field", `{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":1e6,"sd":300},"wafers":5000,"bogus":1}`},
		{"trailing data", validScenario + `{"again":true}`},
		{"zero yield", `{"process":{"lambda_um":0.18,"yield":0},"design":{"transistors":1e6,"sd":300},"wafers":5000}`},
		{"negative wafers", `{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":1e6,"sd":300},"wafers":-5}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, body := do(t, s, "POST", "/v1/cost", c.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %v)", code, body)
			}
		})
	}
}

// TestDesignCostPoleHTTP pins the three-point regression demanded by the
// eq (6) fix: just below the pole, at the pole, just above it.
func TestDesignCostPoleHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name     string
		sd       float64
		wantCode int
	}{
		{"below pole", 100 - 1e-7, http.StatusBadRequest},
		{"at pole", 100, http.StatusBadRequest},
		{"above pole", 100 + 1e-3, http.StatusOK},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body := fmt.Sprintf(`{"transistors":10e6,"sd":%.9f}`, c.sd)
			code, _, out := do(t, s, "POST", "/v1/designcost", body)
			if code != c.wantCode {
				t.Fatalf("status = %d, want %d (body %v)", code, c.wantCode, out)
			}
			if c.wantCode == http.StatusBadRequest {
				if got := errCode(t, out); got != "out_of_domain" {
					t.Fatalf("error code = %q, want out_of_domain", got)
				}
				return
			}
			cost, _ := out["design_cost"].(float64)
			if !(cost > 0) || math.IsInf(cost, 0) {
				t.Fatalf("design_cost = %v, want finite positive", cost)
			}
		})
	}
}

func TestGeneralized(t *testing.T) {
	s := newTestServer(t, Config{})

	body := `{"scenario":` + validScenario + `,"yield_model":{"model":"negbinomial","alpha":2,"d0":0.5}}`
	code, _, out := do(t, s, "POST", "/v1/generalized", body)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, out)
	}
	ey, _ := out["effective_yield"].(float64)
	if !(ey > 0 && ey <= 1) {
		t.Fatalf("effective_yield = %v, want in (0, 1]", ey)
	}
	if u, _ := out["utilization"].(float64); u != 1 {
		t.Fatalf("utilization = %v, want the zero-value default 1 echoed back", u)
	}

	for name, bad := range map[string]string{
		"unknown model":  `{"scenario":` + validScenario + `,"yield_model":{"model":"oracle","d0":0.5}}`,
		"zero alpha":     `{"scenario":` + validScenario + `,"yield_model":{"model":"negbinomial","d0":0.5}}`,
		"negative d0":    `{"scenario":` + validScenario + `,"yield_model":{"model":"poisson","d0":-1}}`,
		"infinite alpha": `{"scenario":` + validScenario + `,"yield_model":{"model":"negbinomial","alpha":1e999,"d0":0.5}}`,
	} {
		t.Run(name, func(t *testing.T) {
			code, _, out := do(t, s, "POST", "/v1/generalized", bad)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %v)", code, out)
			}
		})
	}
}

func TestSweep(t *testing.T) {
	s := newTestServer(t, Config{})

	for _, variable := range []string{"sd", "wafers", "yield"} {
		t.Run(variable, func(t *testing.T) {
			lo, hi := 200.0, 2000.0
			if variable == "yield" {
				lo, hi = 0.1, 0.9
			}
			body := fmt.Sprintf(`{"scenario":%s,"variable":%q,"lo":%g,"hi":%g,"points":8}`,
				validScenario, variable, lo, hi)
			code, _, out := do(t, s, "POST", "/v1/sweep", body)
			if code != http.StatusOK {
				t.Fatalf("status = %d, body %v", code, out)
			}
			pts, _ := out["points"].([]any)
			if len(pts) != 8 {
				t.Fatalf("got %d points, want 8", len(pts))
			}
		})
	}

	for name, bad := range map[string]string{
		"unknown variable": `{"scenario":` + validScenario + `,"variable":"moon","lo":1,"hi":2,"points":4}`,
		"one point":        `{"scenario":` + validScenario + `,"variable":"sd","lo":200,"hi":2000,"points":1}`,
		"too many points":  `{"scenario":` + validScenario + `,"variable":"sd","lo":200,"hi":2000,"points":100000}`,
		"lo below pole":    `{"scenario":` + validScenario + `,"variable":"sd","lo":50,"hi":2000,"points":4}`,
	} {
		t.Run(name, func(t *testing.T) {
			code, _, out := do(t, s, "POST", "/v1/sweep", bad)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %v)", code, out)
			}
		})
	}

	t.Run("lo below pole is out_of_domain", func(t *testing.T) {
		body := `{"scenario":` + validScenario + `,"variable":"sd","lo":50,"hi":2000,"points":4}`
		_, _, out := do(t, s, "POST", "/v1/sweep", body)
		if got := errCode(t, out); got != "out_of_domain" {
			t.Fatalf("error code = %q, want out_of_domain", got)
		}
	})
}

func TestFigures(t *testing.T) {
	s := newTestServer(t, Config{})

	for _, id := range []string{"1", "2", "3", "4"} {
		t.Run("figure "+id, func(t *testing.T) {
			code, _, out := do(t, s, "GET", "/v1/figures/"+id, "")
			if code != http.StatusOK {
				t.Fatalf("status = %d, body %v", code, out)
			}
			figs, _ := out["figures"].([]any)
			if len(figs) == 0 {
				t.Fatal("empty figure list")
			}
			first, _ := figs[0].(map[string]any)
			series, _ := first["series"].([]any)
			if len(series) == 0 {
				t.Fatal("figure carries no series")
			}
		})
	}

	if code, _, _ := do(t, s, "GET", "/v1/figures/9", ""); code != http.StatusNotFound {
		t.Fatalf("unknown figure: status = %d, want 404", code)
	}
	if code, _, _ := do(t, s, "GET", "/v1/figures/4?points=1", ""); code != http.StatusBadRequest {
		t.Fatalf("bad points: status = %d, want 400", code)
	}
}

func TestUnknownRouteIsJSON404(t *testing.T) {
	s := newTestServer(t, Config{})
	code, _, body := do(t, s, "GET", "/nope", "")
	if code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
	if got := errCode(t, body); got != "not_found" {
		t.Fatalf("error code = %q, want not_found", got)
	}
}

// TestSaturation429: with the semaphore pre-filled, the next request is
// turned away with 429 + Retry-After instead of queueing without bound.
func TestSaturation429(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 2})
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
	}()
	code, hdr, body := do(t, s, "POST", "/v1/cost", validScenario)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %v)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := errCode(t, body); got != "saturated" {
		t.Fatalf("error code = %q, want saturated", got)
	}
}

// TestRequestTimeout504: a deadline that expires mid-evaluation surfaces
// as 504 with code "timeout".
func TestRequestTimeout504(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	body := `{"scenario":` + validScenario + `,"variable":"sd","lo":200,"hi":2000,"points":64}`
	code, _, out := do(t, s, "POST", "/v1/sweep", body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %v)", code, out)
	}
	if got := errCode(t, out); got != "timeout" {
		t.Fatalf("error code = %q, want timeout", got)
	}
}

// TestClientCancel499: when the client context dies, nothing is written
// and the conventional 499 lands in the metrics.
func TestClientCancel499(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/cost", strings.NewReader(validScenario)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Body.Len() != 0 {
		t.Fatalf("cancelled request got a body: %q", rec.Body.String())
	}
	n := s.metrics.requests.Value("/v1/cost", "499")
	if n != 1 {
		t.Fatalf("metrics recorded %d cancellations, want 1", n)
	}
}

func TestBodyTooLarge413(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 16})
	code, _, body := do(t, s, "POST", "/v1/cost", validScenario)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %v)", code, body)
	}
	if got := errCode(t, body); got != "body_too_large" {
		t.Fatalf("error code = %q, want body_too_large", got)
	}
}

// TestMetricsExposition: after some traffic, /metrics carries the request
// counters, the latency histogram and the memo cache gauges.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "POST", "/v1/cost", validScenario)
	do(t, s, "GET", "/v1/figures/4", "")
	do(t, s, "GET", "/v1/figures/4", "") // second hit exercises the memo cache

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`nanocostd_requests_total{route="/v1/cost",code="200"} 1`,
		"nanocostd_request_seconds_count",
		"nanocostd_request_seconds_bucket",
		"nanocostd_in_flight 0",
		`nanocostd_memo_cache_hit_rate{cache="serve.figures"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestGracefulDrain: cancelling the serve context while a request is in
// flight must let that request finish (200), then Serve returns nil.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, Config{ShutdownTimeout: 5 * time.Second})
	release := make(chan struct{})
	s.mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		<-release
		writeJSON(w, http.StatusOK, map[string]string{"status": "slow ok"})
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	deadline := time.After(5 * time.Second)
	for s.Addr() == "" {
		select {
		case <-deadline:
			t.Fatal("server never came up")
		case <-time.After(time.Millisecond):
		}
	}

	resp := make(chan int, 1)
	go func() {
		r, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			resp <- -1
			return
		}
		defer r.Body.Close()
		io.Copy(io.Discard, r.Body)
		resp <- r.StatusCode
	}()

	time.Sleep(50 * time.Millisecond) // give the GET time to enter the handler
	cancel()
	time.Sleep(50 * time.Millisecond) // shutdown begins with the request still blocked
	close(release)

	select {
	case code := <-resp:
		if code != http.StatusOK {
			t.Fatalf("in-flight request got %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}
