package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mcjob"
)

// distJobSpec is the canonical spec the distributed tests run: 4 shards
// of one defect chunk each (8192 trials/chunk), small enough to
// evaluate inline in a unit test.
const distJobSpec = `{"kind":"defect","trials":32768,"shards":4,"seed":11,"defect":{"lambda":0.9}}`

// distEvaluator rebuilds the shard evaluator a remote worker would
// derive from distJobSpec, for hand-rolled partial uploads.
func distEvaluator(t *testing.T) *mcjob.ShardEvaluator {
	t.Helper()
	var req jobRequest
	if err := json.Unmarshal([]byte(distJobSpec), &req); err != nil {
		t.Fatalf("spec: %v", err)
	}
	k, err := buildKernel(req)
	if err != nil {
		t.Fatalf("buildKernel: %v", err)
	}
	eval, err := mcjob.NewShardEvaluator(k, mcjob.RunConfig{Trials: req.Trials, Shards: req.Shards, Seed: req.Seed})
	if err != nil {
		t.Fatalf("NewShardEvaluator: %v", err)
	}
	return eval
}

func postJSON(t *testing.T, s *Server, target string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	code, _, out := do(t, s, "POST", target, string(buf))
	return code, out
}

// TestDistributedJobEndpoints drives the coordinator's wire protocol by
// hand: open-job listing, lease grant/renewal, shard upload, duplicate
// refusal, and geometry rejection, finishing the job purely through
// remote uploads (JobWorkers -1 disables local evaluation).
func TestDistributedJobEndpoints(t *testing.T) {
	s := newTestServer(t, Config{
		DistributeJobs: true,
		JobDir:         t.TempDir(),
		LeaseTTL:       time.Minute,
		JobWorkers:     -1,
		WorkerID:       "coord",
	})

	code, _, body := do(t, s, "POST", "/v1/jobs", distJobSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %v", code, body)
	}
	id, _ := body["id"].(string)

	// Status advertises distribution.
	code, _, st := do(t, s, "GET", "/v1/jobs/"+id, "")
	if code != http.StatusOK || st["distributed"] != true {
		t.Fatalf("status = %d %v, want distributed=true", code, st)
	}

	// The open listing carries the job with all shards leasable and the
	// original spec, byte-for-byte decodable by a worker.
	code, _, open := do(t, s, "GET", "/v1/jobs/open", "")
	if code != http.StatusOK {
		t.Fatalf("open = %d %v", code, open)
	}
	jobs, _ := open["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("open jobs = %v, want exactly the submitted job", open)
	}
	oj, _ := jobs[0].(map[string]any)
	if oj["id"] != id || oj["kind"] != "defect" || oj["leasable_shards"] != float64(4) {
		t.Fatalf("open entry = %v", oj)
	}
	if _, ok := oj["spec"].(map[string]any); !ok {
		t.Fatalf("open entry spec = %T, want the job request object", oj["spec"])
	}

	// Failure modes before doing real work.
	code, errBody := postJSON(t, s, "/v1/jobs/"+id+"/lease", leaseRequest{})
	if code != http.StatusBadRequest || errCode(t, errBody) != "invalid_request" {
		t.Fatalf("ownerless lease = %d %v", code, errBody)
	}
	code, errBody = postJSON(t, s, "/v1/jobs/0123456789abcdef/lease", leaseRequest{Owner: "w1", Max: 1})
	if code != http.StatusNotFound || errCode(t, errBody) != "job_not_found" {
		t.Fatalf("lease on unknown job = %d %v", code, errBody)
	}

	// Lease two shards, then finish the job by uploading all four.
	code, lr := postJSON(t, s, "/v1/jobs/"+id+"/lease", leaseRequest{Owner: "w1", Max: 2})
	if code != http.StatusOK {
		t.Fatalf("lease = %d %v", code, lr)
	}
	leases, _ := lr["leases"].([]any)
	if len(leases) != 2 {
		t.Fatalf("leases = %v, want 2", lr)
	}

	eval := distEvaluator(t)
	upload := func(shard int, mutate func([]mcjob.Partial)) (int, map[string]any) {
		parts, err := eval.EvalShard(context.Background(), shard)
		if err != nil {
			t.Fatalf("EvalShard(%d): %v", shard, err)
		}
		if mutate != nil {
			mutate(parts)
		}
		return postJSON(t, s, "/v1/jobs/"+id+"/partials",
			partialsRequest{Owner: "w1", Shard: shard, Seconds: 0.01, Chunks: parts})
	}

	// Geometry the coordinator's plan contradicts is the worker's fault: 400.
	code, errBody = upload(0, func(parts []mcjob.Partial) { parts[0].Trials++ })
	if code != http.StatusBadRequest || errCode(t, errBody) != "invalid_request" {
		t.Fatalf("bad-geometry upload = %d %v", code, errBody)
	}
	if got := s.metrics.jobPartialsTotal.With("rejected").Value(); got != 1 {
		t.Fatalf("rejected partials counter = %d, want 1", got)
	}

	code, pr := upload(0, nil)
	if code != http.StatusOK || pr["accepted"] != true || pr["duplicate"] != false {
		t.Fatalf("first upload = %d %v", code, pr)
	}
	code, pr = upload(0, nil)
	if code != http.StatusOK || pr["accepted"] != false || pr["duplicate"] != true {
		t.Fatalf("duplicate upload = %d %v", code, pr)
	}
	for shard := 1; shard < 4; shard++ {
		if code, pr = upload(shard, nil); code != http.StatusOK || pr["accepted"] != true {
			t.Fatalf("upload shard %d = %d %v", shard, code, pr)
		}
	}
	if got := s.metrics.jobPartialsTotal.With("accepted").Value(); got != 4 {
		t.Fatalf("accepted partials counter = %d, want 4", got)
	}
	if got := s.metrics.jobPartialsTotal.With("duplicate").Value(); got != 1 {
		t.Fatalf("duplicate partials counter = %d, want 1", got)
	}
	if got := s.metrics.jobLeasesTotal.With("granted").Value(); got != 2 {
		t.Fatalf("granted leases counter = %d, want 2", got)
	}

	final := waitForJob(t, s, id)
	if final["state"] != "done" {
		t.Fatalf("final state = %v (%v)", final["state"], final["error"])
	}

	// The merged result matches a plain single-host run bit for bit.
	_, _, gotBody := rawDo(t, s, "GET", "/v1/jobs/"+id+"/result", "")
	ref := newTestServer(t, Config{})
	code, _, refSub := do(t, ref, "POST", "/v1/jobs", distJobSpec)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit = %d %v", code, refSub)
	}
	waitForJob(t, ref, id)
	_, _, refBody := rawDo(t, ref, "GET", "/v1/jobs/"+id+"/result", "")
	if string(gotBody) != string(refBody) {
		t.Fatalf("distributed result differs from single-host run:\n%s\nvs\n%s", gotBody, refBody)
	}

	// A finished job is no longer open, and further lease calls answer
	// with the terminal state and zero leases instead of an error.
	_, _, open = do(t, s, "GET", "/v1/jobs/open", "")
	if jobs, _ := open["jobs"].([]any); len(jobs) != 0 {
		t.Fatalf("open after completion = %v, want none", open)
	}
	code, lr = postJSON(t, s, "/v1/jobs/"+id+"/lease", leaseRequest{Owner: "w2", Max: 4})
	if code != http.StatusOK || lr["state"] != "done" || lr["leases"] != nil {
		t.Fatalf("lease on finished job = %d %v", code, lr)
	}
}

// TestDistributedEndpointsRequireCoordinator pins the 409 for jobs that
// run without a coordinator: the endpoints exist, but the job cannot
// serve leases.
func TestDistributedEndpointsRequireCoordinator(t *testing.T) {
	s := newTestServer(t, Config{})
	code, _, body := do(t, s, "POST", "/v1/jobs", distJobSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %v", code, body)
	}
	id, _ := body["id"].(string)
	waitForJob(t, s, id)

	code, errBody := postJSON(t, s, "/v1/jobs/"+id+"/lease", leaseRequest{Owner: "w1", Max: 1})
	if code != http.StatusConflict || errCode(t, errBody) != "job_not_distributed" {
		t.Fatalf("lease on local job = %d %v", code, errBody)
	}
	code, errBody = postJSON(t, s, "/v1/jobs/"+id+"/partials", partialsRequest{Owner: "w1", Chunks: []mcjob.Partial{}})
	if code != http.StatusConflict || errCode(t, errBody) != "job_not_distributed" {
		t.Fatalf("partials on local job = %d %v", code, errBody)
	}
}

// TestDistributedJobTwoServers is the end-to-end round: server A runs a
// pure coordinator (no local evaluation), server B's worker loop
// discovers the job over HTTP, computes every shard, and uploads the
// partials. The merged result must be byte-identical to the same spec
// run on a plain non-distributed server.
func TestDistributedJobTwoServers(t *testing.T) {
	oldPoll := workerPollInterval
	workerPollInterval = 10 * time.Millisecond
	t.Cleanup(func() { workerPollInterval = oldPoll })

	a := newTestServer(t, Config{
		DistributeJobs: true,
		JobDir:         t.TempDir(),
		LeaseTTL:       2 * time.Second,
		JobWorkers:     -1,
		WorkerID:       "coord-a",
	})
	tsA := httptest.NewServer(a.Handler())
	t.Cleanup(tsA.Close)
	addrA := strings.TrimPrefix(tsA.URL, "http://")

	b := newTestServer(t, Config{Peers: []string{addrA}, WorkerID: "worker-b"})

	spec := `{"kind":"defect","trials":100000,"shards":5,"seed":23,"defect":{"lambda":1.1}}`
	code, _, body := do(t, a, "POST", "/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %v", code, body)
	}
	id, _ := body["id"].(string)

	final := waitForJob(t, a, id)
	if final["state"] != "done" {
		t.Fatalf("final state = %v (%v)", final["state"], final["error"])
	}
	if final["distributed"] != true {
		t.Fatalf("final status = %v, want distributed=true", final)
	}

	// Every shard arrived over the wire: the coordinator evaluated none.
	if got := a.metrics.jobPartialsTotal.With("accepted").Value(); got != 5 {
		t.Fatalf("accepted partials on A = %d, want 5", got)
	}
	if got := b.metrics.workerShards.With("uploaded").Value(); got == 0 {
		t.Fatalf("worker B uploaded no shards")
	}

	rcode, _, gotBody := rawDo(t, a, "GET", "/v1/jobs/"+id+"/result", "")
	if rcode != http.StatusOK {
		t.Fatalf("result = %d: %s", rcode, gotBody)
	}

	ref := newTestServer(t, Config{})
	code, _, refSub := do(t, ref, "POST", "/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit = %d %v", code, refSub)
	}
	if fin := waitForJob(t, ref, id); fin["state"] != "done" {
		t.Fatalf("reference final state = %v (%v)", fin["state"], fin["error"])
	}
	_, _, refBody := rawDo(t, ref, "GET", "/v1/jobs/"+id+"/result", "")
	if string(gotBody) != string(refBody) {
		t.Fatalf("distributed result differs from single-host run:\n%s\nvs\n%s", gotBody, refBody)
	}
}

// TestWorkerRejectsUnknownSpec pins the worker's defensive decode: a
// coordinator advertising a spec with fields this replica does not know
// is skipped, not half-evaluated.
func TestWorkerRejectsUnknownSpec(t *testing.T) {
	w := newWorker(Config{WorkerID: "w", Peers: []string{"127.0.0.1:1"}}, newMetrics(), discardLogger())
	t.Cleanup(w.stop)
	_, err := w.evaluator(openJobJSON{ID: "deadbeefdeadbeef", Kind: "defect",
		Spec: json.RawMessage(`{"kind":"defect","trials":100,"defect":{"lambda":1},"mystery":true}`)})
	if err == nil || !strings.Contains(err.Error(), "decode spec") {
		t.Fatalf("evaluator on unknown field = %v, want decode error", err)
	}
}
