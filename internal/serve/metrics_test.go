package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// expositionSample is one parsed line of the text exposition format.
type expositionSample struct {
	family string // metric name with _bucket/_sum/_count stripped
	name   string
	labels string
	value  string
}

// parseExposition splits a /metrics body into comments and samples, using
// only the grammar of the text exposition format (no Prometheus library in
// the module, by design).
func parseExposition(t *testing.T, body []byte) (samples []expositionSample, types map[string]string) {
	t.Helper()
	types = map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("family %s declared twice: samples are not contiguous", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, labels := line, ""
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("unbalanced braces: %q", line)
			}
			name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("malformed sample: %q", line)
			}
			name, rest = fields[0], fields[1]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suffix); ok {
				if _, histogram := types[f]; histogram {
					family = f
				}
				break
			}
		}
		samples = append(samples, expositionSample{family: family, name: name, labels: labels, value: rest})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

// TestMetricsExpositionConformance is the regression test for the
// Prometheus text-format violations: interleaved metric families,
// non-cumulative histogram buckets, a +Inf bucket disagreeing with _count,
// and label values escaped with Go syntax instead of the format's.
func TestMetricsExpositionConformance(t *testing.T) {
	s := newTestServer(t, Config{})
	// Traffic across several routes and statuses, plus latencies straddling
	// several buckets, so the histogram and counters have structure.
	for i, sec := range []float64{0.0001, 0.0007, 0.004, 0.004, 0.08, 3} {
		s.metrics.observe("/v1/cost", 200+i%2*204, sec)
	}
	// A hostile label value: every character class the format makes you
	// escape, plus ones Go's %q would mangle (the conformance bug).
	weird := "/v1/\\evil\"route\nwith\tunicodeé"
	s.metrics.observe(weird, 400, 0.001)
	s.metrics.batchItems.With("ok").Add(7)
	s.metrics.streamedBytes.Add(1234)
	// Span-duration samples across two stages, so the labelled histogram
	// family has structure to check.
	s.metrics.spanSeconds.With("core.eval").Observe(0.002)
	s.metrics.spanSeconds.With("serve.request").Observe(0.01)
	// Job telemetry: lifecycle counters, a shard duration past the request
	// histogram's range, and the float throughput gauge.
	s.metrics.jobsTotal.With("submitted").Add(3)
	s.metrics.jobsTotal.With("completed").Add(2)
	s.metrics.jobsTotal.With("failed").Inc()
	s.metrics.jobShardSeconds.Observe(12.5)
	s.metrics.jobTrialsPerSec.Set(2_500_000.5)

	code, _, body := rawDo(t, s, "GET", "/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	samples, types := parseExposition(t, body)

	// Families must be contiguous: once a family's samples stop, the name
	// must not reappear later in the scrape.
	last := map[string]int{}
	for i, smp := range samples {
		if prev, seen := last[smp.family]; seen && prev != i-1 {
			t.Errorf("family %s has non-contiguous samples (lines %d and %d)", smp.family, prev, i)
		}
		last[smp.family] = i
	}

	// Every sample belongs to a declared family; core families carry the
	// right type.
	for _, smp := range samples {
		if _, ok := types[smp.family]; !ok {
			t.Errorf("sample %s has no TYPE declaration", smp.name)
		}
	}
	for family, want := range map[string]string{
		"nanocostd_requests_total":          "counter",
		"nanocostd_request_seconds":         "histogram",
		"nanocostd_in_flight":               "gauge",
		"nanocostd_batch_items_total":       "counter",
		"nanocostd_streamed_bytes_total":    "counter",
		"nanocostd_memo_cache_hits_total":   "counter",
		"nanocostd_memo_cache_misses_total": "counter",
		"nanocostd_memo_cache_hit_rate":     "gauge",
		"nanocostd_span_seconds":            "histogram",
		"nanocostd_jobs_total":              "counter",
		"nanocostd_job_shard_seconds":       "histogram",
		"nanocostd_job_trials_per_sec":      "gauge",
		"nanocostd_pool_chunk_wait_seconds": "histogram",
		"nanocostd_pool_chunk_exec_seconds": "histogram",
		"nanocostd_worker_poll_seconds":     "histogram",
		"obs_trace_spans_dropped_total":     "counter",
		"obs_traces_evicted_total":          "counter",
		"go_goroutines":                     "gauge",
		"go_memstats_heap_alloc_bytes":      "gauge",
		"go_gc_cycles_total":                "counter",
	} {
		if got := types[family]; got != want {
			t.Errorf("family %s TYPE = %q, want %q", family, got, want)
		}
	}

	// Histogram: buckets cumulative (monotonically non-decreasing in le
	// order, which is emission order), +Inf present and equal to _count.
	var prev uint64
	var infValue, countValue string
	bucketCount := 0
	for _, smp := range samples {
		switch smp.name {
		case "nanocostd_request_seconds_bucket":
			bucketCount++
			v, err := strconv.ParseUint(smp.value, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", smp.value, err)
			}
			if v < prev {
				t.Errorf("bucket %q = %d < previous %d: buckets are not cumulative", smp.labels, v, prev)
			}
			prev = v
			if strings.Contains(smp.labels, `le="+Inf"`) {
				infValue = smp.value
			}
		case "nanocostd_request_seconds_count":
			countValue = smp.value
		}
	}
	if bucketCount != len(latencyBuckets)+1 {
		t.Errorf("%d bucket samples, want %d", bucketCount, len(latencyBuckets)+1)
	}
	if infValue == "" || infValue != countValue {
		t.Errorf("le=\"+Inf\" bucket = %q, _count = %q: must exist and agree", infValue, countValue)
	}

	// Label escaping: exactly \\, \" and \n; tab and non-ASCII pass through
	// raw (UTF-8 is legal in label values — Go's %q escaping of them is
	// what broke conformant parsers).
	wantLabel := `route="/v1/\\evil\"route\nwith` + "\tunicodeé" + `"`
	if !bytes.Contains(body, []byte(wantLabel)) {
		t.Errorf("hostile route label not conformantly escaped; scrape does not contain %q", wantLabel)
	}

	// The batch and streaming counters surface the values recorded above.
	for _, want := range []string{
		fmt.Sprintf("nanocostd_batch_items_total{outcome=\"ok\"} %d", 7),
		"nanocostd_streamed_bytes_total 1234",
		`nanocostd_jobs_total{state="submitted"} 3`,
		`nanocostd_jobs_total{state="completed"} 2`,
		`nanocostd_jobs_total{state="failed"} 1`,
		`nanocostd_job_shard_seconds_bucket{le="30"} 1`,
		`nanocostd_job_shard_seconds_bucket{le="10"} 0`,
		"nanocostd_job_trials_per_sec 2.5000005e+06",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
