package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// specID decodes a raw job-spec JSON the way the submit handler does and
// returns its canonical ID.
func specID(t *testing.T, raw string) string {
	t.Helper()
	var req jobRequest
	if err := json.Unmarshal([]byte(raw), &req); err != nil {
		t.Fatalf("spec %s: %v", raw, err)
	}
	k, err := buildKernel(req)
	if err != nil {
		t.Fatalf("spec %s: %v", raw, err)
	}
	id, full := jobID(req, k)
	if len(id) != 16 || len(full) != 64 {
		t.Fatalf("jobID(%s) = (%q, %q), want 16- and 64-hex", raw, id, full)
	}
	return id
}

// TestJobIDCanonicalizesEquivalentSpecs is the regression test for the
// raw-request hash: submits that resolve to the same effective run must
// map to the same job ID whichever defaults the client spelled out.
// 200000 defect trials make 25 unit chunks, so an omitted shard count,
// the explicit default (64, clamped to 25) and the explicit resolved
// value (25) are all the same plan.
func TestJobIDCanonicalizesEquivalentSpecs(t *testing.T) {
	equivalent := []struct {
		name string
		a, b string
	}{
		{"omitted vs resolved shards",
			`{"kind":"defect","trials":200000,"defect":{"lambda":1.1}}`,
			`{"kind":"defect","trials":200000,"shards":25,"defect":{"lambda":1.1}}`},
		{"default vs clamped shards",
			`{"kind":"defect","trials":200000,"shards":64,"defect":{"lambda":1.1}}`,
			`{"kind":"defect","trials":200000,"shards":25,"defect":{"lambda":1.1}}`},
		{"omitted vs explicit zero seed",
			`{"kind":"defect","trials":200000,"shards":4,"defect":{"lambda":1.1}}`,
			`{"kind":"defect","trials":200000,"shards":4,"seed":0,"defect":{"lambda":1.1}}`},
		{"omitted vs explicit false checkpoint",
			`{"kind":"defect","trials":200000,"defect":{"lambda":1.1}}`,
			`{"kind":"defect","trials":200000,"checkpoint":false,"defect":{"lambda":1.1}}`},
		{"field order is irrelevant",
			`{"kind":"defect","trials":200000,"seed":5,"defect":{"lambda":1.1}}`,
			`{"defect":{"lambda":1.1},"seed":5,"trials":200000,"kind":"defect"}`},
	}
	for _, tc := range equivalent {
		t.Run(tc.name, func(t *testing.T) {
			if a, b := specID(t, tc.a), specID(t, tc.b); a != b {
				t.Fatalf("equivalent specs got distinct IDs %s / %s", a, b)
			}
		})
	}

	distinct := []struct {
		name string
		a, b string
	}{
		{"different seed",
			`{"kind":"defect","trials":200000,"defect":{"lambda":1.1}}`,
			`{"kind":"defect","trials":200000,"seed":1,"defect":{"lambda":1.1}}`},
		{"different trials",
			`{"kind":"defect","trials":200000,"defect":{"lambda":1.1}}`,
			`{"kind":"defect","trials":100000,"defect":{"lambda":1.1}}`},
		{"shards that resolve differently",
			`{"kind":"defect","trials":200000,"shards":2,"defect":{"lambda":1.1}}`,
			`{"kind":"defect","trials":200000,"shards":4,"defect":{"lambda":1.1}}`},
		{"checkpointing on vs off",
			`{"kind":"defect","trials":200000,"defect":{"lambda":1.1}}`,
			`{"kind":"defect","trials":200000,"checkpoint":true,"defect":{"lambda":1.1}}`},
		{"different kernel spec",
			`{"kind":"defect","trials":200000,"defect":{"lambda":1.1}}`,
			`{"kind":"defect","trials":200000,"defect":{"lambda":1.2}}`},
	}
	for _, tc := range distinct {
		t.Run(tc.name, func(t *testing.T) {
			if a, b := specID(t, tc.a), specID(t, tc.b); a == b {
				t.Fatalf("distinct specs collided on ID %s", a)
			}
		})
	}
}

// TestJobSubmitDedupesEquivalentSpellings drives the same guarantee
// through the HTTP surface: the second, differently spelled submit must
// attach (200) to the job the first one created (202).
func TestJobSubmitDedupesEquivalentSpellings(t *testing.T) {
	s := newTestServer(t, Config{})
	code, _, body := do(t, s, "POST", "/v1/jobs",
		`{"kind":"defect","trials":200000,"shards":64,"defect":{"lambda":1.3}}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d %v", code, body)
	}
	id := body["id"].(string)

	code2, _, body2 := do(t, s, "POST", "/v1/jobs",
		`{"kind":"defect","trials":200000,"seed":0,"defect":{"lambda":1.3}}`)
	if code2 != http.StatusOK || body2["id"] != id {
		t.Fatalf("equivalent submit = %d %v, want 200 attach to %s", code2, body2, id)
	}
	waitForJob(t, s, id)
}

// TestJobEquivalentSpellingResumesAcrossRestart is the acceptance-level
// half: a daemon restart must resume the checkpoint of a job submitted
// under a different (equivalent) spelling, ending with byte-identical
// result bytes and no redrawn shards.
func TestJobEquivalentSpellingResumesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spellingA := `{"kind":"defect","trials":300000,"shards":8,"seed":0,"checkpoint":true,"defect":{"lambda":1.1,"alpha":2}}`
	spellingB := `{"kind":"defect","trials":300000,"shards":8,"checkpoint":true,"defect":{"lambda":1.1,"alpha":2}}`

	s1 := newTestServer(t, Config{JobDir: dir})
	_, _, body := do(t, s1, "POST", "/v1/jobs", spellingA)
	id := body["id"].(string)
	if st := waitForJob(t, s1, id)["state"]; st != "done" {
		t.Fatalf("first run state = %v", st)
	}
	_, _, raw1 := rawDo(t, s1, "GET", "/v1/jobs/"+id+"/result", "")
	s1.Close()

	s2 := newTestServer(t, Config{JobDir: dir})
	code, _, body2 := do(t, s2, "POST", "/v1/jobs", spellingB)
	if code != http.StatusAccepted || body2["id"] != id {
		t.Fatalf("equivalent respelled submit = %d %v, want id %s", code, body2, id)
	}
	final := waitForJob(t, s2, id)
	if final["state"] != "done" || final["shards_resumed"] != float64(8) {
		t.Fatalf("resume = %v, want done with all 8 shards resumed", final)
	}
	_, _, raw2 := rawDo(t, s2, "GET", "/v1/jobs/"+id+"/result", "")
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("respelled resume result differs:\n%s\n%s", raw1, raw2)
	}
}
