package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/core"
)

// This file is the NDJSON streaming side of the service: content
// negotiation, the chunked sweep writer, and the line writer the figure
// handler shares. Streamed responses are one JSON value per line
// (application/x-ndjson), flushed chunk by chunk so a consumer sees the
// first points while the tail of the grid is still evaluating, and abort
// promptly — without leaking pool workers — when the client disconnects.

// wantsNDJSON reports whether the request negotiated NDJSON streaming via
// the Accept header. Parameters (";q=", charset) are ignored; only the
// media type decides.
func wantsNDJSON(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := part
		if i := strings.Index(mt, ";"); i >= 0 {
			mt = mt[:i]
		}
		if strings.EqualFold(strings.TrimSpace(mt), "application/x-ndjson") {
			return true
		}
	}
	return false
}

// flush pushes buffered response bytes onto the wire if the writer
// supports it. Handlers receive the middleware's statusRecorder, which
// passes Flush through to the real connection.
func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// streamLines writes pre-encoded NDJSON content line by line, flushing
// after each line and stopping when ctx dies. It serves the memoized
// figure payloads, whose representations are already encoded.
func (s *Server) streamLines(w http.ResponseWriter, ctx context.Context, body []byte) {
	for len(body) > 0 {
		if ctx.Err() != nil {
			return
		}
		line := body
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			line = body[:i+1]
		}
		n, err := w.Write(line)
		s.metrics.streamedBytes.Add(uint64(n))
		if err != nil {
			return
		}
		flush(w)
		body = body[len(line):]
	}
}

// streamSweep is the NDJSON branch of POST /v1/sweep: the same grid and
// the same per-point bytes as the buffered response, but delivered one
// point per line in chunks of core.SweepStreamChunk. Validation errors
// surface before the first write (so they still map to a 400); once the
// header is out, a failure can only truncate the stream. A client
// disconnect cancels the request context, which aborts the sweep between
// points/chunks — the pool workers are released, not leaked.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, req sweepRequest, sc core.Scenario) (any, error) {
	ctx := r.Context()
	var sweep func(emit func([]core.SweepPoint) error) error
	switch req.Variable {
	case "sd":
		sweep = func(emit func([]core.SweepPoint) error) error {
			return core.SweepSdStream(ctx, sc, req.Lo, req.Hi, req.Points, 0, emit)
		}
	case "wafers":
		sweep = func(emit func([]core.SweepPoint) error) error {
			return core.SweepVolumeStream(ctx, sc, req.Lo, req.Hi, req.Points, 0, emit)
		}
	case "yield":
		sweep = func(emit func([]core.SweepPoint) error) error {
			return core.SweepYieldStream(ctx, sc, req.Lo, req.Hi, req.Points, 0, emit)
		}
	default:
		return nil, badRequest(fmt.Errorf("unknown sweep variable %q (want sd, wafers or yield)", req.Variable))
	}

	started := false
	err := sweep(func(pts []core.SweepPoint) error {
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		for _, p := range pts {
			line, err := json.Marshal(pointJSON{X: p.X, Breakdown: toBreakdownJSON(p.Breakdown)})
			if err != nil {
				return err
			}
			line = append(line, '\n')
			n, werr := w.Write(line)
			s.metrics.streamedBytes.Add(uint64(n))
			if werr != nil {
				return werr
			}
		}
		flush(w)
		return ctx.Err()
	})
	if err != nil {
		if !started {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, badRequest(err)
		}
		return nil, err
	}
	return wroteResponse{}, nil
}
