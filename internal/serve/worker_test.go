package serve

import (
	"testing"
	"time"
)

// TestWorkerBackoffDoublesAndCaps: idle polls double from the base
// interval up to half the lease TTL and never past it, and a successful
// acquire resets to the base (pinned by pollPeer, exercised here at the
// arithmetic level).
func TestWorkerBackoffDoublesAndCaps(t *testing.T) {
	w := newWorker(Config{WorkerID: "w", LeaseTTL: 8 * time.Second}, newMetrics(), discardLogger())
	t.Cleanup(w.stop)
	if w.poll != workerPollInterval {
		t.Fatalf("base poll = %v, want %v", w.poll, workerPollInterval)
	}
	if w.maxPoll != 4*time.Second {
		t.Fatalf("maxPoll = %v, want half the lease TTL", w.maxPoll)
	}
	cur := w.poll
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second, 4 * time.Second}
	for i, expect := range want {
		cur = w.backoff(cur)
		if cur != expect {
			t.Fatalf("backoff step %d = %v, want %v", i, cur, expect)
		}
	}
	// A sleep below the base never comes back shorter than the base.
	if got := w.backoff(0); got != w.poll {
		t.Fatalf("backoff(0) = %v, want base %v", got, w.poll)
	}
}

// TestWorkerBackoffCapNeverBelowBase: a lease TTL shorter than twice the
// base poll interval must not produce a cap below the base itself.
func TestWorkerBackoffCapNeverBelowBase(t *testing.T) {
	w := newWorker(Config{WorkerID: "w", LeaseTTL: 100 * time.Millisecond}, newMetrics(), discardLogger())
	t.Cleanup(w.stop)
	if w.poll > w.maxPoll {
		t.Fatalf("poll %v exceeds cap %v", w.poll, w.maxPoll)
	}
	if got := w.backoff(w.poll); got != w.maxPoll {
		t.Fatalf("backoff at tight TTL = %v, want cap %v", got, w.maxPoll)
	}
}

// TestWorkerJitterRange: the jittered sleep is uniform over [d/2, d) —
// pinned at both edges through the deterministic jitter seam.
func TestWorkerJitterRange(t *testing.T) {
	w := newWorker(Config{WorkerID: "w", LeaseTTL: time.Minute}, newMetrics(), discardLogger())
	t.Cleanup(w.stop)

	w.jitter = func() float64 { return 0 }
	if got := w.jittered(time.Second); got != 500*time.Millisecond {
		t.Fatalf("jittered at jitter=0: %v, want 500ms", got)
	}
	w.jitter = func() float64 { return 0.999999 }
	if got := w.jittered(time.Second); got < 500*time.Millisecond || got >= time.Second {
		t.Fatalf("jittered at jitter→1: %v, want in [500ms, 1s)", got)
	}
	if got := w.jittered(0); got != 0 {
		t.Fatalf("jittered(0) = %v, want 0", got)
	}
}
