package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// This file is the batch serving layer: POST /v1/batch accepts an array of
// heterogeneous evaluation requests (the bodies of /v1/cost, /v1/designcost
// and /v1/generalized) and fans them out over the parallel engine. The
// contract is the one design-space scanners need:
//
//   - results come back in input order, deterministically, for any worker
//     count — item i of the response always answers item i of the request;
//   - each item's result body is byte-identical to what the individual
//     endpoint would have returned, because both run the same evaluation
//     and the same encoder;
//   - errors are isolated per item: one out-of-domain scenario yields an
//     item-level error envelope with its own status, not a 400 for the
//     whole batch. Only a dead request context (timeout, client gone)
//     aborts the batch as a whole.

// maxBatchItems caps one /v1/batch request. Together with the 1 MiB body
// cap it bounds what a single request can make the pool chew on; larger
// scans should be split into multiple batches.
const maxBatchItems = 1024

// batchItemJSON is one entry of the request array: the target endpoint
// ("cost", "designcost" or "generalized") and its body, verbatim.
type batchItemJSON struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// batchRequest is the POST /v1/batch payload.
type batchRequest struct {
	Items []batchItemJSON `json:"items"`
}

// batchItemResult is one entry of the response array. Status mirrors the
// HTTP status the individual endpoint would have answered, and Body is
// that endpoint's exact body: a result object for 200, the error envelope
// for anything else.
type batchItemResult struct {
	Index  int             `json:"index"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

// batchResponse is the response envelope. Field order matches the
// alphabetical key order json.Marshal gave the former map encoding, so
// the bytes on the wire are unchanged.
type batchResponse struct {
	Count   int               `json:"count"`
	Results []batchItemResult `json:"results"`
}

// batchScratch holds one batch request's reusable buffers: the
// index-addressed body/error slots the parallel engine writes, the
// result envelope entries, and the response encode buffer. Pooling them
// means a steady stream of 1024-item batches stops allocating result
// slices and encode buffers per request; only the per-item payload
// bytes (which must outlive the arena) are still allocated fresh.
type batchScratch struct {
	bodies  []json.RawMessage
	errs    []error
	results []batchItemResult
	buf     bytes.Buffer
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// grab sizes the scratch for n items.
func (b *batchScratch) grab(n int) {
	if cap(b.bodies) < n {
		b.bodies = make([]json.RawMessage, n)
		b.errs = make([]error, n)
	}
	if cap(b.results) < n {
		b.results = make([]batchItemResult, 0, n)
	}
}

// release clears every pointer-holding slot — a parked scratch must not
// pin request payloads in memory — and returns the scratch to the pool.
func (b *batchScratch) release(n int) {
	for i := 0; i < n && i < len(b.bodies); i++ {
		b.bodies[i] = nil
		b.errs[i] = nil
	}
	for i := range b.results {
		b.results[i].Body = nil
	}
	b.results = b.results[:0]
	b.buf.Reset()
	batchScratchPool.Put(b)
}

// serveBatchTuner adapts how many batch items one scheduled task covers.
var serveBatchTuner parallel.ChunkTuner

// handleBatch fans a heterogeneous batch out over the parallel engine.
// It writes its own response from a pooled encode buffer (returning the
// wroteResponse sentinel), which is what makes it safe to release the
// pooled buffers before returning to the middleware.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) (any, error) {
	req, err := decodeJSON[batchRequest](r)
	if err != nil {
		return nil, err
	}
	if len(req.Items) == 0 {
		return nil, badRequest(errors.New("batch contains no items"))
	}
	if len(req.Items) > maxBatchItems {
		return nil, badRequest(fmt.Errorf("batch has %d items, max %d", len(req.Items), maxBatchItems))
	}
	ctx, span := obs.StartSpan(r.Context(), "serve.batch")
	if span != nil {
		span.SetAttr("items", strconv.Itoa(len(req.Items)))
		defer span.End()
	}
	n := len(req.Items)
	scratch := batchScratchPool.Get().(*batchScratch)
	scratch.grab(n)
	bodies, errs := scratch.bodies[:n], scratch.errs[:n]
	stop := parallel.MapAllInto(ctx, bodies, errs, 0, &serveBatchTuner, func(i int) (json.RawMessage, error) {
		v, err := evalBatchItem(ctx, req.Items[i])
		if err != nil {
			return nil, err
		}
		buf, err := json.Marshal(v)
		if err != nil {
			return nil, &apiError{status: http.StatusInternalServerError, code: "internal", err: err}
		}
		return buf, nil
	})
	if stop != nil {
		// The request context died: the whole batch maps to 504/499 exactly
		// like a single long evaluation would.
		scratch.release(n)
		return nil, stop
	}
	results := scratch.results[:0]
	var okItems, errItems uint64
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			ae := asAPIError(errs[i])
			var envelope errorBody
			envelope.Error.Code = ae.code
			envelope.Error.Message = ae.err.Error()
			raw, _ := json.Marshal(envelope)
			results = append(results, batchItemResult{Index: i, Status: ae.status, Body: raw})
			errItems++
			continue
		}
		results = append(results, batchItemResult{Index: i, Status: http.StatusOK, Body: bodies[i]})
		okItems++
	}
	scratch.results = results
	s.metrics.batchItems.With("ok").Add(okItems)
	s.metrics.batchItems.With("error").Add(errItems)
	// Encode into the pooled buffer; json.Encoder appends the same
	// trailing newline writeJSON does, so the bytes match the old path.
	scratch.buf.Reset()
	if err := json.NewEncoder(&scratch.buf).Encode(batchResponse{Count: n, Results: results}); err != nil {
		scratch.release(n)
		return nil, &apiError{status: http.StatusInternalServerError, code: "internal", err: err}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, werr := w.Write(scratch.buf.Bytes())
	scratch.release(n)
	if werr != nil {
		// The header is out; nothing more can be written. The access log
		// carries the truncation via the middleware's error annotation.
		return nil, werr
	}
	return wroteResponse{}, nil
}

// evalBatchItem dispatches one batch item to the evaluation core of its
// target endpoint, with the same strict body decoding the endpoint itself
// applies.
func evalBatchItem(ctx context.Context, item batchItemJSON) (any, error) {
	switch item.Kind {
	case "cost":
		req, err := decodeJSONBytes[scenarioJSON](item.Body)
		if err != nil {
			return nil, err
		}
		return evalCost(ctx, req)
	case "designcost":
		req, err := decodeJSONBytes[designCostRequest](item.Body)
		if err != nil {
			return nil, err
		}
		return evalDesignCost(ctx, req)
	case "generalized":
		req, err := decodeJSONBytes[generalizedRequest](item.Body)
		if err != nil {
			return nil, err
		}
		return evalGeneralized(ctx, req)
	default:
		return nil, badRequest(fmt.Errorf("unknown batch item kind %q (want cost, designcost or generalized)", item.Kind))
	}
}

// decodeJSONBytes is decodeJSON for an in-memory body: the same strict
// rules (unknown fields, trailing garbage) applied to a batch item's raw
// message.
func decodeJSONBytes[T any](raw json.RawMessage) (T, error) {
	var v T
	if len(raw) == 0 {
		return v, &apiError{status: http.StatusBadRequest, code: "invalid_request",
			err: errors.New("batch item has no body")}
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, &apiError{status: http.StatusBadRequest, code: "invalid_request",
			err: fmt.Errorf("malformed batch item body: %w", err)}
	}
	if dec.More() {
		return v, &apiError{status: http.StatusBadRequest, code: "invalid_request",
			err: errors.New("batch item body contains trailing data")}
	}
	return v, nil
}
