package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mcjob"
	"repro/internal/obs"
)

// TestDistributedJobTraceAndEvents is the observability side of the
// two-server round: the worker's lease/renew/shard spans parent under
// its worker.job root, the coordinator's serve.request spans parent
// under the exact worker spans that made the calls (joined by the
// deterministic job-<id> trace), the worker's poll histogram fills, and
// the coordinator's event timeline tells the whole story with the
// worker attributed by owner.
func TestDistributedJobTraceAndEvents(t *testing.T) {
	oldPoll := workerPollInterval
	workerPollInterval = 10 * time.Millisecond
	t.Cleanup(func() { workerPollInterval = oldPoll })

	a := newTestServer(t, Config{
		DistributeJobs: true,
		JobDir:         t.TempDir(),
		LeaseTTL:       2 * time.Second,
		JobWorkers:     -1,
		WorkerID:       "coord-a",
	})
	tsA := httptest.NewServer(a.Handler())
	t.Cleanup(tsA.Close)
	addrA := strings.TrimPrefix(tsA.URL, "http://")

	b := newTestServer(t, Config{Peers: []string{addrA}, WorkerID: "worker-b"})

	spec := `{"kind":"defect","trials":32768,"shards":4,"seed":11,"defect":{"lambda":0.9},"checkpoint":true}`
	code, _, body := do(t, a, "POST", "/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %v", code, body)
	}
	id := body["id"].(string)
	if fin := waitForJob(t, a, id); fin["state"] != "done" {
		t.Fatalf("final state = %v (%v)", fin["state"], fin["error"])
	}

	// Span commits race the job's terminal state by a poll interval or
	// two (the worker's root ends on its next empty lease round), so
	// wait for both tracers to have the full trace.
	tid := "job-" + id
	var workerTrace, coordTrace *obs.TraceRecord
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		wt, wok := b.tracer.Lookup(tid)
		ct, cok := a.tracer.Lookup(tid)
		if wok && cok && countSpans(wt, "worker.job") > 0 &&
			countSpans(wt, "worker.shard") > 0 && countSpans(ct, "serve.request") > 0 {
			workerTrace, coordTrace = wt, ct
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if workerTrace == nil || coordTrace == nil {
		t.Fatalf("traces for %s never completed on both processes", tid)
	}

	// Worker side: every lease/renew/shard span hangs off a worker.job
	// root of the same cycle.
	roots := map[string]bool{}
	workerSpanIDs := map[string]bool{}
	for _, sp := range workerTrace.Spans {
		workerSpanIDs[sp.SpanID] = true
		if sp.Name == "worker.job" {
			roots[sp.SpanID] = true
			if sp.Attrs["owner"] != "worker-b" {
				t.Fatalf("worker.job owner attr = %q", sp.Attrs["owner"])
			}
		}
	}
	if countSpans(workerTrace, "worker.lease") == 0 {
		t.Fatal("no worker.lease spans recorded")
	}
	for _, sp := range workerTrace.Spans {
		switch sp.Name {
		case "worker.lease", "worker.renew", "worker.shard":
			if !roots[sp.ParentID] {
				t.Fatalf("%s span %s parents to %q, not a worker.job root", sp.Name, sp.SpanID, sp.ParentID)
			}
		}
	}

	// Coordinator side: the job.run span exists, and every serve.request
	// span (a lease, renew or partials call) names a worker span as its
	// cross-process parent.
	if countSpans(coordTrace, "job.run") == 0 {
		t.Fatal("coordinator recorded no job.run span")
	}
	for _, sp := range coordTrace.Spans {
		if sp.Name != "serve.request" {
			continue
		}
		if sp.ParentID == "" || !workerSpanIDs[sp.ParentID] {
			t.Fatalf("serve.request span %s parents to %q, not a span of the worker's trace",
				sp.SpanID, sp.ParentID)
		}
	}

	// The poll-interval histogram filled while the worker polled.
	if got := b.metrics.workerPollSeconds.Count(); got == 0 {
		t.Fatal("nanocostd_worker_poll_seconds recorded no observations")
	}

	// The coordinator's event timeline: submission through completion,
	// with the worker attributed on lease grants and accepted partials.
	ecode, _, raw := rawDo(t, a, "GET", "/v1/jobs/"+id+"/events", "")
	if ecode != http.StatusOK {
		t.Fatalf("events = %d: %s", ecode, raw)
	}
	ev := decodeEvents(t, raw)
	byType := map[string][]mcjob.Event{}
	for _, e := range ev.Events {
		byType[e.Type] = append(byType[e.Type], e)
	}
	for _, want := range []string{
		mcjob.EventSubmitted, mcjob.EventLeaseAcquired, mcjob.EventPartialAccepted,
		mcjob.EventCheckpointFlush, mcjob.EventShardMerged, mcjob.EventCompleted,
	} {
		if len(byType[want]) == 0 {
			t.Fatalf("timeline has no %q event: %+v", want, ev.Events)
		}
	}
	for _, e := range byType[mcjob.EventPartialAccepted] {
		if e.Owner != "worker-b" {
			t.Fatalf("partial_accepted owner = %q, want worker-b", e.Owner)
		}
	}
	if len(byType[mcjob.EventShardMerged]) != 4 {
		t.Fatalf("shard_merged events = %d, want 4", len(byType[mcjob.EventShardMerged]))
	}
}

func countSpans(tr *obs.TraceRecord, name string) int {
	n := 0
	for _, sp := range tr.Spans {
		if sp.Name == name {
			n++
		}
	}
	return n
}
