package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/parallel"
)

// batchOf builds a /v1/batch payload from raw item bodies.
func batchOf(kinds []string, bodies []string) string {
	var b strings.Builder
	b.WriteString(`{"items":[`)
	for i := range kinds {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"kind":%q,"body":%s}`, kinds[i], bodies[i])
	}
	b.WriteString(`]}`)
	return b.String()
}

// rawDo runs one request and returns the raw response bytes.
func rawDo(t *testing.T, s *Server, method, target, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Result().Header, rec.Body.Bytes()
}

// batchResults decodes the results array of a batch response.
func batchResults(t *testing.T, body []byte) []struct {
	Index  int             `json:"index"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
} {
	t.Helper()
	var resp struct {
		Count   int `json:"count"`
		Results []struct {
			Index  int             `json:"index"`
			Status int             `json:"status"`
			Body   json.RawMessage `json:"body"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("batch response is not JSON: %v\n%s", err, body)
	}
	if resp.Count != len(resp.Results) {
		t.Fatalf("count %d != %d results", resp.Count, len(resp.Results))
	}
	return resp.Results
}

// scenarioWithSd renders a /v1/cost body at the given decompression index.
func scenarioWithSd(sd float64) string {
	return fmt.Sprintf(`{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":%g},"wafers":5000}`, sd)
}

// TestBatchMatchesIndividualCallsByteForByte is the acceptance gate: a
// batch of 100 point evaluations answers, per item and in input order,
// exactly the bytes the 100 individual /v1/cost calls produce — in one
// HTTP round-trip instead of 100.
func TestBatchMatchesIndividualCallsByteForByte(t *testing.T) {
	s := newTestServer(t, Config{})
	const n = 100
	kinds := make([]string, n)
	bodies := make([]string, n)
	for i := range kinds {
		kinds[i] = "cost"
		bodies[i] = scenarioWithSd(200 + 10*float64(i))
	}

	code, _, raw := rawDo(t, s, "POST", "/v1/batch", batchOf(kinds, bodies))
	if code != http.StatusOK {
		t.Fatalf("batch status = %d\n%s", code, raw)
	}
	results := batchResults(t, raw)
	if len(results) != n {
		t.Fatalf("%d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Index != i {
			t.Fatalf("result %d carries index %d: ordering broken", i, res.Index)
		}
		if res.Status != http.StatusOK {
			t.Fatalf("item %d status = %d\n%s", i, res.Status, res.Body)
		}
		_, _, single := rawDo(t, s, "POST", "/v1/cost", bodies[i])
		// The individual endpoint terminates its body with one newline; the
		// batch embeds the same bytes inside the results array.
		if want := bytes.TrimSuffix(single, []byte("\n")); !bytes.Equal(res.Body, want) {
			t.Fatalf("item %d body differs from individual call:\nbatch:  %s\nsingle: %s", i, res.Body, want)
		}
	}

	// The fewer-round-trips claim, asserted on the request counters: all n
	// evaluations above cost one /v1/batch request (the n /v1/cost requests
	// were the comparison calls made afterwards).
	batchCalls := s.metrics.requests.Value("/v1/batch", "200")
	singleCalls := s.metrics.requests.Value("/v1/cost", "200")
	if batchCalls != 1 || singleCalls != n {
		t.Fatalf("round-trips: %d batch / %d single, want 1 / %d", batchCalls, singleCalls, n)
	}
	if got := s.metrics.batchItems.Value("ok"); got != n {
		t.Fatalf("batch ok-items metric = %d, want %d", got, n)
	}
}

// TestBatchDeterministicAcrossWorkerCounts: the full response body is
// byte-identical for -workers 1, 2 and 4.
func TestBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	kinds := make([]string, 0, 60)
	bodies := make([]string, 0, 60)
	for i := 0; i < 20; i++ {
		kinds = append(kinds, "cost", "designcost", "generalized")
		bodies = append(bodies,
			scenarioWithSd(150+25*float64(i)), // below 200: some hit the pole region
			fmt.Sprintf(`{"transistors":10e6,"sd":%d}`, 120+40*i),
			`{"scenario":`+scenarioWithSd(300+10*float64(i))+`,"yield_model":{"model":"murphy","d0":0.5}}`,
		)
	}
	payload := batchOf(kinds, bodies)

	responses := map[int][]byte{}
	for _, workers := range []int{1, 2, 4} {
		parallel.SetDefaultWorkers(workers)
		s := newTestServer(t, Config{})
		code, _, raw := rawDo(t, s, "POST", "/v1/batch", payload)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: status %d", workers, code)
		}
		responses[workers] = raw
	}
	parallel.SetDefaultWorkers(0)
	for _, workers := range []int{2, 4} {
		if !bytes.Equal(responses[workers], responses[1]) {
			t.Fatalf("workers=%d response differs from workers=1", workers)
		}
	}
}

// TestBatchIsolatesItemErrors: bad items answer their own error envelope
// (with the out_of_domain code where it applies) while good neighbours
// still answer 200 — the whole batch never collapses to a 400.
func TestBatchIsolatesItemErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	kinds := []string{"cost", "cost", "designcost", "telepathy", "cost"}
	bodies := []string{
		scenarioWithSd(300),              // ok
		scenarioWithSd(90),               // eq (6) pole -> out_of_domain
		`{"transistors":10e6,"bogus":1}`, // unknown field -> invalid_request
		`{}`,                             // unknown kind
		scenarioWithSd(400),              // ok
	}
	code, _, raw := rawDo(t, s, "POST", "/v1/batch", batchOf(kinds, bodies))
	if code != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 despite bad items\n%s", code, raw)
	}
	results := batchResults(t, raw)
	wantStatus := []int{200, 400, 400, 400, 200}
	for i, res := range results {
		if res.Status != wantStatus[i] {
			t.Fatalf("item %d status = %d, want %d (%s)", i, res.Status, wantStatus[i], res.Body)
		}
	}
	var envelope errorBody
	if err := json.Unmarshal(results[1].Body, &envelope); err != nil {
		t.Fatalf("item 1 error body not an envelope: %s", results[1].Body)
	}
	if envelope.Error.Code != "out_of_domain" {
		t.Fatalf("item 1 error code = %q, want out_of_domain", envelope.Error.Code)
	}
	if err := json.Unmarshal(results[3].Body, &envelope); err != nil || envelope.Error.Code != "invalid_request" {
		t.Fatalf("unknown-kind item error = %q (%v), want invalid_request", envelope.Error.Code, err)
	}
	if ok, bad := s.metrics.batchItems.Value("ok"), s.metrics.batchItems.Value("error"); ok != 2 || bad != 3 {
		t.Fatalf("batch item metrics = %d ok / %d error, want 2 / 3", ok, bad)
	}
}

// TestBatchRejectsMalformedRequests: empty batches, oversized batches and
// whole-body JSON damage are still request-level 400s.
func TestBatchRejectsMalformedRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	big := batchOf(make([]string, maxBatchItems+1), func() []string {
		bs := make([]string, maxBatchItems+1)
		for i := range bs {
			bs[i] = `{}`
		}
		return bs
	}())
	for name, body := range map[string]string{
		"empty items":   `{"items":[]}`,
		"missing items": `{}`,
		"trailing data": `{"items":[]}{"again":true}`,
		"oversized":     big,
	} {
		t.Run(name, func(t *testing.T) {
			code, _, raw := rawDo(t, s, "POST", "/v1/batch", body)
			if code != http.StatusBadRequest && code != http.StatusRequestEntityTooLarge {
				t.Fatalf("status = %d, want 400/413\n%s", code, raw)
			}
		})
	}
}

// BenchmarkBatch100 vs BenchmarkSingle100 quantify the round-trip saving
// behind the batch endpoint: the same 100 evaluations through one request
// versus one hundred.
func benchmarkBatchPayload() (string, []string) {
	const n = 100
	kinds := make([]string, n)
	bodies := make([]string, n)
	for i := range kinds {
		kinds[i] = "cost"
		bodies[i] = scenarioWithSd(200 + 10*float64(i))
	}
	return batchOf(kinds, bodies), bodies
}

func BenchmarkBatch100(b *testing.B) {
	s := NewServer(Config{Logger: discardLogger()})
	payload, _ := benchmarkBatchPayload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(payload))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

func BenchmarkSingle100(b *testing.B) {
	s := NewServer(Config{Logger: discardLogger()})
	_, bodies := benchmarkBatchPayload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, body := range bodies {
			req := httptest.NewRequest("POST", "/v1/cost", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	}
}
