package serve

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, chosen to straddle the workloads the service hosts: point
// evaluations land in the sub-millisecond buckets, sweeps and figure
// regenerations in the tens-of-milliseconds range, and anything beyond a
// few seconds indicates saturation or an oversized request. The span
// histograms share the layout (obs.DurationBuckets is the same values)
// so per-stage and per-request latencies line up bucket for bucket.
var latencyBuckets = obs.DurationBuckets

// jobShardBuckets cover simulation-job shard durations, which run far
// longer than HTTP requests: a well-sized shard lands in the 0.1–10 s
// range, and the top buckets flag shards big enough to make
// checkpointing pointless.
var jobShardBuckets = []float64{0.005, 0.02, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60}

// workerPollBuckets cover the lease-poll backoff range: the base poll
// interval (0.5 s) through the TTL/2 cap an idle worker settles at.
var workerPollBuckets = []float64{0.1, 0.25, 0.5, 1, 2, 5, 10, 30}

// metrics is the service's telemetry, all registered on one obs.Registry
// per server instance (so tests that build several servers never share
// counters). Family order in the scrape is registration order: the HTTP
// families first, then span durations and worker-pool timings, then the
// Go runtime, then the memo caches.
type metrics struct {
	reg           *obs.Registry
	requests      *obs.CounterVec   // by route pattern and status code
	latency       *obs.Histogram    // request seconds
	inFlight      *obs.Gauge        // requests currently admitted
	batchItems    *obs.CounterVec   // /v1/batch items by outcome
	streamedBytes *obs.Counter      // bytes written on NDJSON responses
	spanSeconds   *obs.HistogramVec // trace span durations by stage

	jobsTotal       *obs.CounterVec // simulation jobs by lifecycle state
	jobShardSeconds *obs.Histogram  // per-shard evaluation wall time
	jobTrialsPerSec *obs.FloatGauge // most recent job's live trial rate

	jobLeasesTotal    *obs.CounterVec // shard leases handed to remote workers
	jobPartialsTotal  *obs.CounterVec // remote shard uploads by outcome
	workerShards      *obs.CounterVec // shards this replica computed for peers
	workerPollSeconds *obs.Histogram  // per-peer lease-poll sleeps (backoff visible)
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		requests: reg.NewCounterVec("nanocostd_requests_total",
			"Requests served, by route pattern and status code.", "route", "code"),
		latency: reg.NewHistogramOn("nanocostd_request_seconds",
			"Request latency histogram.", latencyBuckets),
		inFlight: reg.NewGauge("nanocostd_in_flight",
			"Requests currently being served."),
		batchItems: reg.NewCounterVec("nanocostd_batch_items_total",
			"Batch items evaluated via /v1/batch, by outcome.", "outcome"),
		streamedBytes: reg.NewCounter("nanocostd_streamed_bytes_total",
			"Bytes written on NDJSON streaming responses."),
		spanSeconds: reg.NewHistogramVec("nanocostd_span_seconds",
			"Trace span durations, by stage.", obs.DurationBuckets, "stage"),
		jobsTotal: reg.NewCounterVec("nanocostd_jobs_total",
			"Simulation jobs, by lifecycle state (submitted/completed/failed/cancelled).", "state"),
		jobShardSeconds: reg.NewHistogramOn("nanocostd_job_shard_seconds",
			"Wall-clock evaluation time of completed simulation-job shards.", jobShardBuckets),
		jobTrialsPerSec: reg.NewFloatGauge("nanocostd_job_trials_per_sec",
			"Live trial throughput of the most recently progressing job (resumed shards excluded)."),
		jobLeasesTotal: reg.NewCounterVec("nanocostd_job_leases_total",
			"Distributed shard leases served over HTTP, by outcome (granted/renewed).", "outcome"),
		jobPartialsTotal: reg.NewCounterVec("nanocostd_job_partials_total",
			"Shard-partial uploads received over HTTP, by outcome (accepted/duplicate/rejected). Locally evaluated shards are not counted, so 'accepted' is exactly the remote contribution.", "outcome"),
		workerShards: reg.NewCounterVec("nanocostd_worker_shards_total",
			"Shards this replica's worker loop computed for peer coordinators, by outcome (uploaded/duplicate/failed).", "outcome"),
		workerPollSeconds: reg.NewHistogramOn("nanocostd_worker_poll_seconds",
			"Sleep chosen before each per-peer lease poll; exponential backoff with jitter, so the distribution shows how hard an idle fleet polls its coordinators.", workerPollBuckets),
	}
	// The worker pool's chunk timings are package-level instruments shared
	// by every pool user; attach them so a scrape correlates queue wait
	// with request latency.
	reg.AttachHistogram("nanocostd_pool_chunk_wait_seconds",
		"Worker-pool chunk queue-wait time: submission to pickup.",
		parallel.ChunkWaitSeconds())
	reg.AttachHistogram("nanocostd_pool_chunk_exec_seconds",
		"Worker-pool chunk execution time.",
		parallel.ChunkExecSeconds())
	reg.RegisterGoRuntime()
	// The memo caches keep their own counters in the model layer; render
	// them from memo.Stats at scrape time, one family at a time (the
	// format requires each family contiguous).
	reg.RegisterRaw([]string{
		"nanocostd_memo_cache_hits_total",
		"nanocostd_memo_cache_misses_total",
		"nanocostd_memo_cache_hit_rate",
	}, writeMemoFamilies)
	return m
}

// observe records one finished request.
func (m *metrics) observe(route string, code int, seconds float64) {
	m.requests.With(route, strconv.Itoa(code)).Inc()
	m.latency.Observe(seconds)
}

// writeTo renders the full scrape.
func (m *metrics) writeTo(w io.Writer) { m.reg.Render(w) }

func writeMemoFamilies(w io.Writer) {
	stats := memo.Stats()
	fmt.Fprintln(w, "# HELP nanocostd_memo_cache_hits_total Hits of each registered memo cache.")
	fmt.Fprintln(w, "# TYPE nanocostd_memo_cache_hits_total counter")
	for _, s := range stats {
		fmt.Fprintf(w, "nanocostd_memo_cache_hits_total{%s} %d\n", obs.Label("cache", s.Name), s.Hits)
	}
	fmt.Fprintln(w, "# HELP nanocostd_memo_cache_misses_total Misses of each registered memo cache.")
	fmt.Fprintln(w, "# TYPE nanocostd_memo_cache_misses_total counter")
	for _, s := range stats {
		fmt.Fprintf(w, "nanocostd_memo_cache_misses_total{%s} %d\n", obs.Label("cache", s.Name), s.Misses)
	}
	fmt.Fprintln(w, "# HELP nanocostd_memo_cache_hit_rate Hit rate of each registered memo cache.")
	fmt.Fprintln(w, "# TYPE nanocostd_memo_cache_hit_rate gauge")
	for _, s := range stats {
		fmt.Fprintf(w, "nanocostd_memo_cache_hit_rate{%s} %g\n", obs.Label("cache", s.Name), s.HitRate())
	}
}
