package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/memo"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, chosen to straddle the workloads the service hosts: point
// evaluations land in the sub-millisecond buckets, sweeps and figure
// regenerations in the tens-of-milliseconds range, and anything beyond a
// few seconds indicates saturation or an oversized request.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics aggregates the service's observability counters: per-route and
// per-status request counts, a request latency histogram, an in-flight
// gauge, per-item batch outcomes and streamed-byte totals. All methods are
// safe for concurrent use.
type metrics struct {
	inFlight      atomic.Int64
	batchOK       atomic.Uint64 // batch items answered 200
	batchErr      atomic.Uint64 // batch items answered with an error envelope
	streamedBytes atomic.Uint64 // bytes written on NDJSON responses

	mu       sync.Mutex
	requests map[routeCode]uint64
	buckets  []uint64 // one per latencyBuckets entry, plus the +Inf slot
	sum      float64  // total observed seconds
	count    uint64   // total observations
}

// routeCode keys a request counter: the registered route pattern (not the
// raw URL, which is unbounded) and the response status code.
type routeCode struct {
	route string
	code  int
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[routeCode]uint64),
		buckets:  make([]uint64, len(latencyBuckets)+1),
	}
}

// observe records one finished request.
func (m *metrics) observe(route string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	m.buckets[i]++
	m.sum += seconds
	m.count++
}

// labelEscaper escapes a label value per the Prometheus text exposition
// format: exactly backslash, double-quote and newline — the three escapes
// the format defines. Go's %q is close but not conformant (it escapes
// further control and non-ASCII characters with Go syntax a Prometheus
// parser does not understand), so label rendering goes through this
// instead.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// label renders one name="value" pair with a conformantly escaped value.
func label(name, value string) string {
	return name + `="` + labelEscaper.Replace(value) + `"`
}

// writeTo renders the metrics in the Prometheus text exposition format:
// every family contiguous under its own HELP/TYPE header, histogram
// buckets cumulative with the +Inf sample equal to _count, label values
// escaped per the format. The memo-cache counters from the model layer
// are appended so a scrape sees cache effectiveness next to the HTTP
// traffic.
func (m *metrics) writeTo(w io.Writer) {
	m.mu.Lock()
	keys := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].route != keys[b].route {
			return keys[a].route < keys[b].route
		}
		return keys[a].code < keys[b].code
	})
	counts := make([]uint64, len(keys))
	for i, k := range keys {
		counts[i] = m.requests[k]
	}
	buckets := append([]uint64(nil), m.buckets...)
	sum, count := m.sum, m.count
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP nanocostd_requests_total Requests served, by route pattern and status code.")
	fmt.Fprintln(w, "# TYPE nanocostd_requests_total counter")
	for i, k := range keys {
		fmt.Fprintf(w, "nanocostd_requests_total{%s,%s} %d\n",
			label("route", k.route), label("code", strconv.Itoa(k.code)), counts[i])
	}
	fmt.Fprintln(w, "# HELP nanocostd_request_seconds Request latency histogram.")
	fmt.Fprintln(w, "# TYPE nanocostd_request_seconds histogram")
	var cum uint64
	for i, le := range latencyBuckets {
		cum += buckets[i]
		fmt.Fprintf(w, "nanocostd_request_seconds_bucket{%s} %d\n",
			label("le", strconv.FormatFloat(le, 'g', -1, 64)), cum)
	}
	fmt.Fprintf(w, "nanocostd_request_seconds_bucket{le=\"+Inf\"} %d\n", count)
	fmt.Fprintf(w, "nanocostd_request_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "nanocostd_request_seconds_count %d\n", count)
	fmt.Fprintln(w, "# HELP nanocostd_in_flight Requests currently being served.")
	fmt.Fprintln(w, "# TYPE nanocostd_in_flight gauge")
	fmt.Fprintf(w, "nanocostd_in_flight %d\n", m.inFlight.Load())
	fmt.Fprintln(w, "# HELP nanocostd_batch_items_total Batch items evaluated via /v1/batch, by outcome.")
	fmt.Fprintln(w, "# TYPE nanocostd_batch_items_total counter")
	fmt.Fprintf(w, "nanocostd_batch_items_total{%s} %d\n", label("outcome", "ok"), m.batchOK.Load())
	fmt.Fprintf(w, "nanocostd_batch_items_total{%s} %d\n", label("outcome", "error"), m.batchErr.Load())
	fmt.Fprintln(w, "# HELP nanocostd_streamed_bytes_total Bytes written on NDJSON streaming responses.")
	fmt.Fprintln(w, "# TYPE nanocostd_streamed_bytes_total counter")
	fmt.Fprintf(w, "nanocostd_streamed_bytes_total %d\n", m.streamedBytes.Load())

	// One family at a time: interleaving the hits/misses/hit-rate samples
	// per cache (the old rendering) violated the format's requirement that
	// all samples of a family form one contiguous group.
	stats := memo.Stats()
	fmt.Fprintln(w, "# HELP nanocostd_memo_cache_hits_total Hits of each registered memo cache.")
	fmt.Fprintln(w, "# TYPE nanocostd_memo_cache_hits_total counter")
	for _, s := range stats {
		fmt.Fprintf(w, "nanocostd_memo_cache_hits_total{%s} %d\n", label("cache", s.Name), s.Hits)
	}
	fmt.Fprintln(w, "# HELP nanocostd_memo_cache_misses_total Misses of each registered memo cache.")
	fmt.Fprintln(w, "# TYPE nanocostd_memo_cache_misses_total counter")
	for _, s := range stats {
		fmt.Fprintf(w, "nanocostd_memo_cache_misses_total{%s} %d\n", label("cache", s.Name), s.Misses)
	}
	fmt.Fprintln(w, "# HELP nanocostd_memo_cache_hit_rate Hit rate of each registered memo cache.")
	fmt.Fprintln(w, "# TYPE nanocostd_memo_cache_hit_rate gauge")
	for _, s := range stats {
		fmt.Fprintf(w, "nanocostd_memo_cache_hit_rate{%s} %g\n", label("cache", s.Name), s.HitRate())
	}
}
