package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/maskcost"
	"repro/internal/memo"
	"repro/internal/report"
	"repro/internal/yield"
)

// processJSON mirrors core.Process. CostPerCM2 defaults to the paper's
// 8 $/cm² and WaferAreaCM2 to 300 cm² when omitted; λ and Y are required.
type processJSON struct {
	Name         string  `json:"name,omitempty"`
	LambdaUM     float64 `json:"lambda_um"`
	CostPerCM2   float64 `json:"cost_per_cm2,omitempty"`
	Yield        float64 `json:"yield"`
	WaferAreaCM2 float64 `json:"wafer_area_cm2,omitempty"`
}

// designJSON mirrors core.Design.
type designJSON struct {
	Name        string  `json:"name,omitempty"`
	Transistors float64 `json:"transistors"`
	Sd          float64 `json:"sd"`
}

// designCostJSON mirrors core.DesignCostModel (eq (6) calibration).
type designCostJSON struct {
	A0  float64 `json:"a0"`
	P1  float64 `json:"p1"`
	P2  float64 `json:"p2"`
	Sd0 float64 `json:"sd0"`
}

func (m designCostJSON) toModel() core.DesignCostModel {
	return core.DesignCostModel{A0: m.A0, P1: m.P1, P2: m.P2, Sd0: m.Sd0}
}

// scenarioJSON is the request shape shared by /v1/cost, /v1/generalized
// and /v1/sweep: everything eq (4) needs. A nil DesignCost uses the
// paper's published eq (6) calibration; a nil MaskCost prices the mask set
// with the node-dependent default model at the request's λ.
type scenarioJSON struct {
	Process     processJSON     `json:"process"`
	Design      designJSON      `json:"design"`
	DesignCost  *designCostJSON `json:"design_cost,omitempty"`
	MaskCost    *float64        `json:"mask_cost,omitempty"`
	Wafers      float64         `json:"wafers"`
	Utilization float64         `json:"utilization,omitempty"`
}

// toScenario assembles and validates the core.Scenario. Every failure is a
// 400: the request described parameters the model has no answer for.
func (j scenarioJSON) toScenario() (core.Scenario, error) {
	p := core.Process{
		Name:         j.Process.Name,
		LambdaUM:     j.Process.LambdaUM,
		CostPerCM2:   j.Process.CostPerCM2,
		Yield:        j.Process.Yield,
		WaferAreaCM2: j.Process.WaferAreaCM2,
	}
	if p.CostPerCM2 == 0 {
		p.CostPerCM2 = 8.0
	}
	if p.WaferAreaCM2 == 0 {
		p.WaferAreaCM2 = 300
	}
	dcm := core.DefaultDesignCostModel()
	if j.DesignCost != nil {
		dcm = j.DesignCost.toModel()
	}
	var mask float64
	if j.MaskCost != nil {
		mask = *j.MaskCost
	} else {
		var err error
		mask, err = maskcost.DefaultModel().SetCost(p.LambdaUM)
		if err != nil {
			return core.Scenario{}, badRequest(fmt.Errorf("default mask model: %w", err))
		}
	}
	s := core.Scenario{
		Process:     p,
		Design:      core.Design{Name: j.Design.Name, Transistors: j.Design.Transistors, Sd: j.Design.Sd},
		DesignCost:  dcm,
		MaskCost:    mask,
		Wafers:      j.Wafers,
		Utilization: j.Utilization,
	}
	if err := s.Validate(); err != nil {
		return core.Scenario{}, badRequest(err)
	}
	return s, nil
}

// breakdownJSON mirrors core.Breakdown with wire-stable names.
type breakdownJSON struct {
	Manufacturing float64 `json:"manufacturing"`
	DesignAndMask float64 `json:"design_and_mask"`
	Total         float64 `json:"total"`
	CmSq          float64 `json:"cm_sq"`
	CdSq          float64 `json:"cd_sq"`
	DieAreaCM2    float64 `json:"die_area_cm2"`
	DieCost       float64 `json:"die_cost"`
	DesignDE      float64 `json:"design_de"`
}

func toBreakdownJSON(b core.Breakdown) breakdownJSON {
	return breakdownJSON{
		Manufacturing: b.Manufacturing,
		DesignAndMask: b.DesignAndMask,
		Total:         b.Total,
		CmSq:          b.CmSq,
		CdSq:          b.CdSq,
		DieAreaCM2:    b.DieArea,
		DieCost:       b.DieCost,
		DesignDE:      b.DesignDE,
	}
}

// handleCost evaluates eq (1)–(5): the full per-transistor cost breakdown
// of one scenario.
func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) (any, error) {
	req, err := decodeJSON[scenarioJSON](r)
	if err != nil {
		return nil, err
	}
	return evalCost(r.Context(), req)
}

// evalCost is the shared evaluation core of POST /v1/cost and of "cost"
// batch items: single-scenario and batched evaluations go through the one
// code path, so a batch item's result is byte-identical to the individual
// call's body.
func evalCost(ctx context.Context, req scenarioJSON) (any, error) {
	sc, err := req.toScenario()
	if err != nil {
		return nil, err
	}
	b, err := sc.TransistorCostCtx(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, badRequest(err)
	}
	return map[string]any{"breakdown": toBreakdownJSON(b)}, nil
}

// designCostRequest is the /v1/designcost payload: a design size, a
// decompression index and an optional eq (6) calibration.
type designCostRequest struct {
	Transistors float64         `json:"transistors"`
	Sd          float64         `json:"sd"`
	Model       *designCostJSON `json:"model,omitempty"`
}

// handleDesignCost evaluates eq (6). The pole at s_d ≤ s_d0 surfaces as a
// 400 with code "out_of_domain" — never as Inf, NaN or a negative dollar
// figure in the response body.
func (s *Server) handleDesignCost(w http.ResponseWriter, r *http.Request) (any, error) {
	req, err := decodeJSON[designCostRequest](r)
	if err != nil {
		return nil, err
	}
	return evalDesignCost(r.Context(), req)
}

// evalDesignCost is the shared evaluation core of POST /v1/designcost and
// of "designcost" batch items.
func evalDesignCost(ctx context.Context, req designCostRequest) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := core.DefaultDesignCostModel()
	if req.Model != nil {
		m = req.Model.toModel()
	}
	cost, err := m.Cost(req.Transistors, req.Sd)
	if err != nil {
		return nil, badRequest(err)
	}
	marginal, err := m.MarginalCost(req.Transistors, req.Sd)
	if err != nil {
		return nil, badRequest(err)
	}
	return map[string]any{
		"design_cost":   cost,
		"marginal_cost": marginal,
		"sd0":           m.Sd0,
	}, nil
}

// yieldModelJSON selects the analytic yield model of a /v1/generalized
// request: one of poisson, murphy, seeds or negbinomial (alpha required),
// driven by defect density d0 (defects/cm²) against the die area the
// scenario implies.
type yieldModelJSON struct {
	Model string  `json:"model"`
	Alpha float64 `json:"alpha,omitempty"`
	D0    float64 `json:"d0"`
}

func (j yieldModelJSON) toModel() (yield.Model, error) {
	switch j.Model {
	case "poisson":
		return yield.Poisson{}, nil
	case "murphy":
		return yield.Murphy{}, nil
	case "seeds":
		return yield.Seeds{}, nil
	case "negbinomial":
		m := yield.NegBinomial{Alpha: j.Alpha}
		if _, err := m.YieldE(0); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("unknown yield model %q (want poisson, murphy, seeds or negbinomial)", j.Model)
	}
}

// generalizedRequest is the /v1/generalized payload: eq (7) = the eq (4)
// skeleton with utilization (carried inside the scenario) and, optionally,
// a yield model replacing the scalar Y.
type generalizedRequest struct {
	Scenario   scenarioJSON    `json:"scenario"`
	YieldModel *yieldModelJSON `json:"yield_model,omitempty"`
}

// handleGeneralized evaluates eq (7): FPGA-style utilization via the
// scenario's u, and a Y(A_w, λ, N_w, s_d, N_tr) functional dependence via
// the selected analytic yield model at the implied die area.
func (s *Server) handleGeneralized(w http.ResponseWriter, r *http.Request) (any, error) {
	req, err := decodeJSON[generalizedRequest](r)
	if err != nil {
		return nil, err
	}
	return evalGeneralized(r.Context(), req)
}

// evalGeneralized is the shared evaluation core of POST /v1/generalized
// and of "generalized" batch items.
func evalGeneralized(ctx context.Context, req generalizedRequest) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc, err := req.Scenario.toScenario()
	if err != nil {
		return nil, err
	}
	g := core.Generalized{Scenario: sc}
	effectiveYield := sc.Process.Yield
	if req.YieldModel != nil {
		m, err := req.YieldModel.toModel()
		if err != nil {
			return nil, badRequest(err)
		}
		d0 := req.YieldModel.D0
		if !(d0 >= 0) || math.IsInf(d0, 0) {
			return nil, badRequest(fmt.Errorf("defect density d0 must be a finite non-negative number, got %v", d0))
		}
		g.YieldFn = func(waferAreaCM2, lambdaUM, wafers, sd, transistors float64) float64 {
			area, err := core.DieArea(transistors, lambdaUM, sd)
			if err != nil {
				return 0 // rejected by the (0,1] yield check in TransistorCost
			}
			return m.Yield(d0 * area)
		}
		effectiveYield = g.YieldFn(sc.Process.WaferAreaCM2, sc.Process.LambdaUM, sc.Wafers,
			sc.Design.Sd, sc.Design.Transistors)
	}
	b, err := g.TransistorCost()
	if err != nil {
		return nil, badRequest(err)
	}
	u := sc.Utilization
	if u == 0 {
		u = 1 // the Scenario zero value means "fully utilized ASIC"
	}
	return map[string]any{
		"breakdown":       toBreakdownJSON(b),
		"effective_yield": effectiveYield,
		"utilization":     u,
	}, nil
}

// maxSweepPoints caps a single sweep request; larger design-space scans
// should be split client-side so one request cannot monopolize the pool.
const maxSweepPoints = 4096

// sweepRequest is the /v1/sweep payload: a base scenario and the axis to
// sweep — "sd" and "wafers" on a log grid, "yield" on a linear one.
type sweepRequest struct {
	Scenario scenarioJSON `json:"scenario"`
	Variable string       `json:"variable"`
	Lo       float64      `json:"lo"`
	Hi       float64      `json:"hi"`
	Points   int          `json:"points"`
}

// pointJSON is the wire form of one sweep sample, shared by the buffered
// and NDJSON-streamed sweep responses so both carry identical bytes per
// point.
type pointJSON struct {
	X         float64       `json:"x"`
	Breakdown breakdownJSON `json:"breakdown"`
}

// handleSweep runs a parameter sweep on the parallel engine, honoring the
// request deadline: an expired context aborts the remaining grid points.
// With "Accept: application/x-ndjson" the points stream chunk by chunk
// instead of buffering the whole grid in one response value.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) (any, error) {
	req, err := decodeJSON[sweepRequest](r)
	if err != nil {
		return nil, err
	}
	if req.Points < 2 || req.Points > maxSweepPoints {
		return nil, badRequest(fmt.Errorf("points must be in [2, %d], got %d", maxSweepPoints, req.Points))
	}
	sc, err := req.Scenario.toScenario()
	if err != nil {
		return nil, err
	}
	if wantsNDJSON(r) {
		return s.streamSweep(w, r, req, sc)
	}
	var pts []core.SweepPoint
	switch req.Variable {
	case "sd":
		pts, err = core.SweepSdCtx(r.Context(), sc, req.Lo, req.Hi, req.Points)
	case "wafers":
		pts, err = core.SweepVolumeCtx(r.Context(), sc, req.Lo, req.Hi, req.Points)
	case "yield":
		pts, err = core.SweepYieldCtx(r.Context(), sc, req.Lo, req.Hi, req.Points)
	default:
		return nil, badRequest(fmt.Errorf("unknown sweep variable %q (want sd, wafers or yield)", req.Variable))
	}
	if err != nil {
		if ctxErr := r.Context().Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, badRequest(err)
	}
	out := make([]pointJSON, len(pts))
	for i, p := range pts {
		out[i] = pointJSON{X: p.X, Breakdown: toBreakdownJSON(p.Breakdown)}
	}
	return map[string]any{"variable": req.Variable, "points": out}, nil
}

// seriesJSON and figureJSON are the wire form of report figures.
type seriesJSON struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

type figureJSON struct {
	Title  string       `json:"title"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	LogY   bool         `json:"log_y,omitempty"`
	Series []seriesJSON `json:"series"`
}

func toFigureJSON(f *report.Figure) figureJSON {
	out := figureJSON{Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel, LogY: f.LogY}
	for _, s := range f.Series {
		out.Series = append(out.Series, seriesJSON{Name: s.Name, X: s.X, Y: s.Y})
	}
	return out
}

// maxFigurePoints caps the ?points= resolution of a figure regeneration.
// POST bodies are bounded by the 1 MiB body cap; this is the equivalent
// guard for the one GET parameter that sizes an allocation, so a crafted
// query string cannot demand an unbounded grid.
const maxFigurePoints = 10000

// defaultFigurePoints is the Figure 4 s_d resolution when ?points= is
// omitted.
const defaultFigurePoints = 48

// figurePayload is the memoized wire form of one figure response: the
// encoded JSON and NDJSON representations plus a strong ETag over each.
// Caching the bytes (not just the series) makes a repeat fetch a map
// lookup and an If-None-Match revalidation a string compare.
type figurePayload struct {
	body      []byte // {"id":...,"figures":[...]} + trailing newline
	etag      string // strong ETag over body
	ndjson    []byte // one figure object per line
	ndjsonTag string // strong ETag over ndjson
}

// figurePayloadJSON is the snapshot wire form of figurePayload: exported
// fields so the memo snapshot codec can round-trip it. Only the two byte
// payloads travel — the ETags are recomputed on restore, so a corrupt or
// hand-edited snapshot can never serve a tag that disagrees with its
// bytes (If-None-Match would then 304 the wrong content).
type figurePayloadJSON struct {
	Body   []byte `json:"body"`
	NDJSON []byte `json:"ndjson"`
}

func (p *figurePayload) MarshalJSON() ([]byte, error) {
	return json.Marshal(figurePayloadJSON{Body: p.body, NDJSON: p.ndjson})
}

func (p *figurePayload) UnmarshalJSON(b []byte) error {
	var w figurePayloadJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if len(w.Body) == 0 || len(w.NDJSON) == 0 {
		return fmt.Errorf("figure snapshot entry is missing its payload bytes")
	}
	p.body = w.Body
	p.ndjson = w.NDJSON
	p.etag = strongETag(p.body)
	p.ndjsonTag = strongETag(p.ndjson)
	return nil
}

// figureCache memoizes regenerated paper figures keyed by (figure,
// resolution). Figures are pure functions of the request, so the cache is
// shared across requests and its hit rate shows up on /metrics. It is
// also snapshot-enabled: figure payloads are deterministic bytes keyed by
// plain strings, so a warm restart (-memo-snapshot) restores them intact.
var figureCache = memo.New[string, *figurePayload]("serve.figures", 16)

func init() { memo.EnableSnapshot(figureCache) }

// figureResponse is the wire shape of GET /v1/figures/{id}.
type figureResponse struct {
	ID      string       `json:"id"`
	Figures []figureJSON `json:"figures"`
}

// handleFigure regenerates the data series behind paper Figures 1–4.
// Figure 4 accepts ?points= to control the s_d resolution of its two
// panels (default 48). Responses carry a strong ETag and Cache-Control;
// a matching If-None-Match answers 304 with no body. With
// "Accept: application/x-ndjson" the figures stream one per line.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) (any, error) {
	id := trimmedPathValue(r, "id")
	points := defaultFigurePoints
	if raw := r.URL.Query().Get("points"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 2 || n > maxFigurePoints {
			return nil, badRequest(fmt.Errorf("points must be an integer in [2, %d], got %q", maxFigurePoints, raw))
		}
		points = n
	}
	// Only Figure 4 consumes the resolution; folding it into the other
	// figures' keys would let ?points= fragment the cache with identical
	// payloads under distinct keys (and hand each a different ETag).
	key := id
	if id == "4" {
		key += ":" + strconv.Itoa(points)
	}
	p, err := figureCache.GetCtx(r.Context(), key, func(ctx context.Context) (*figurePayload, error) {
		return buildFigurePayload(ctx, id, points)
	})
	if err != nil {
		return nil, err
	}

	body, etag, contentType := p.body, p.etag, "application/json"
	streaming := wantsNDJSON(r)
	if streaming {
		body, etag, contentType = p.ndjson, p.ndjsonTag, "application/x-ndjson"
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=3600")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return wroteResponse{}, nil
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	if streaming {
		s.streamLines(w, r.Context(), body)
	} else {
		w.Write(body)
	}
	return wroteResponse{}, nil
}

// buildFigurePayload is the cache-miss path of handleFigure: regenerate
// the figure series, encode both representations once, fingerprint them.
// ctx carries the filling request's trace (the regeneration runs under
// its memo.fill span) into the figure's sweeps and pool jobs.
func buildFigurePayload(ctx context.Context, id string, points int) (*figurePayload, error) {
	figs, err := buildFigure(ctx, id, points)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(figureResponse{ID: id, Figures: figs})
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	var ndjson []byte
	for _, f := range figs {
		line, err := json.Marshal(f)
		if err != nil {
			return nil, err
		}
		ndjson = append(ndjson, line...)
		ndjson = append(ndjson, '\n')
	}
	return &figurePayload{
		body:      body,
		etag:      strongETag(body),
		ndjson:    ndjson,
		ndjsonTag: strongETag(ndjson),
	}, nil
}

// strongETag fingerprints a response representation as a strong ETag.
func strongETag(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// etagMatches implements the If-None-Match comparison: a comma-separated
// list of entity tags, or "*". Weak prefixes compare equal for GET
// revalidation (RFC 9110 §13.1.2 uses weak comparison for If-None-Match).
func etagMatches(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	for _, candidate := range strings.Split(ifNoneMatch, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == "*" || candidate == etag {
			return true
		}
	}
	return false
}

// buildFigure is the cache-miss path of handleFigure.
func buildFigure(ctx context.Context, id string, points int) ([]figureJSON, error) {
	switch id {
	case "1":
		_, fig, err := experiments.Figure1()
		if err != nil {
			return nil, err
		}
		return []figureJSON{toFigureJSON(fig)}, nil
	case "2":
		_, fig, err := experiments.Figure2()
		if err != nil {
			return nil, err
		}
		return []figureJSON{toFigureJSON(fig)}, nil
	case "3":
		_, fig, err := experiments.Figure3()
		if err != nil {
			return nil, err
		}
		return []figureJSON{toFigureJSON(fig)}, nil
	case "4":
		var out []figureJSON
		for _, c := range experiments.Figure4Cases() {
			_, fig, err := experiments.Figure4Ctx(ctx, c, points)
			if err != nil {
				return nil, err
			}
			out = append(out, toFigureJSON(fig))
		}
		return out, nil
	default:
		return nil, &apiError{status: http.StatusNotFound, code: "not_found",
			err: fmt.Errorf("unknown figure %q (want 1, 2, 3 or 4)", id)}
	}
}
