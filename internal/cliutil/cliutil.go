// Package cliutil holds the post-flag.Parse validation shared by every
// command-line binary in the repository: positional arguments are
// rejected, an explicit -workers value must be positive, profile output
// paths must be writable, and the shared observability flags
// (-log-level, -log-format) must name known values. Centralizing the
// checks keeps all the binaries failing the same way — a usage message
// and exit status 2, the conventional "bad command line" code — instead
// of a deep panic or a silently ignored flag.
package cliutil

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/profiling"
)

// Validate runs the shared checks against the default (already parsed)
// flag set and, on failure, prints the problem plus the flag usage to
// stderr and exits 2. Call it immediately after flag.Parse.
func Validate(prof *profiling.Flags, o *obs.Flags) {
	if err := ValidateSet(flag.CommandLine, prof, o); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", os.Args[0], err)
		flag.Usage()
		os.Exit(2)
	}
}

// ValidateSet is the testable core of Validate: it reports the first
// problem with the parsed flag set fs, or nil.
//
//   - Positional arguments are rejected: every input to these binaries is
//     a flag, so a stray argument is always a mistake (a typo'd flag, a
//     forgotten dash) that would otherwise be silently ignored.
//   - An explicitly passed -workers must be positive. The un-passed
//     default 0 keeps its documented "all cores" meaning; asking for zero
//     or negative workers out loud is a contradiction, not a default.
//   - Profile paths (-cpuprofile, -memprofile) must be writable now, not
//     after the workload has already run.
//   - The observability flags (-log-level, -log-format) must name known
//     values; validation also caches the parsed slog level so the binary
//     can build its logger without re-parsing.
func ValidateSet(fs *flag.FlagSet, prof *profiling.Flags, o *obs.Flags) error {
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected positional argument %q (every input is a flag)", fs.Arg(0))
	}
	if fs.Lookup("workers") != nil {
		explicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				explicit = true
			}
		})
		if explicit {
			if g, ok := fs.Lookup("workers").Value.(flag.Getter); ok {
				if n, ok := g.Get().(int); ok && n <= 0 {
					return fmt.Errorf("-workers must be positive when given explicitly, got %d (omit the flag to use all cores)", n)
				}
			}
		}
	}
	if prof != nil {
		if err := prof.Validate(); err != nil {
			return err
		}
	}
	if o != nil {
		if err := o.Validate(); err != nil {
			return err
		}
	}
	return nil
}
