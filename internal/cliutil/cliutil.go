// Package cliutil holds the post-flag.Parse validation shared by every
// command-line binary in the repository: positional arguments are
// rejected, explicit -workers and -shards values must be positive, a
// -checkpoint directory must be writable, profile output
// paths must be writable, and the shared observability flags
// (-log-level, -log-format) must name known values. Centralizing the
// checks keeps all the binaries failing the same way — a usage message
// and exit status 2, the conventional "bad command line" code — instead
// of a deep panic or a silently ignored flag.
package cliutil

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/profiling"
)

// Validate runs the shared checks against the default (already parsed)
// flag set and, on failure, prints the problem plus the flag usage to
// stderr and exits 2. Call it immediately after flag.Parse.
func Validate(prof *profiling.Flags, o *obs.Flags) {
	if err := ValidateSet(flag.CommandLine, prof, o); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", os.Args[0], err)
		flag.Usage()
		os.Exit(2)
	}
}

// ValidateSet is the testable core of Validate: it reports the first
// problem with the parsed flag set fs, or nil.
//
//   - Positional arguments are rejected: every input to these binaries is
//     a flag, so a stray argument is always a mistake (a typo'd flag, a
//     forgotten dash) that would otherwise be silently ignored.
//   - An explicitly passed -workers must be positive. The un-passed
//     default 0 keeps its documented "all cores" meaning; asking for zero
//     or negative workers out loud is a contradiction, not a default.
//   - Profile paths (-cpuprofile, -memprofile) must be writable now, not
//     after the workload has already run.
//   - The observability flags (-log-level, -log-format) must name known
//     values; validation also caches the parsed slog level so the binary
//     can build its logger without re-parsing.
func ValidateSet(fs *flag.FlagSet, prof *profiling.Flags, o *obs.Flags) error {
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected positional argument %q (every input is a flag)", fs.Arg(0))
	}
	if n, explicit := explicitInt(fs, "workers"); explicit && n <= 0 {
		return fmt.Errorf("-workers must be positive when given explicitly, got %d (omit the flag to use all cores)", n)
	}
	// -shards mirrors -workers: the un-passed default 0 means "let the
	// engine pick", but explicitly demanding zero or negative shards is a
	// contradiction.
	if n, explicit := explicitInt(fs, "shards"); explicit && n <= 0 {
		return fmt.Errorf("-shards must be positive when given explicitly, got %d (omit the flag for the automatic shard count)", n)
	}
	// A checkpoint directory must be creatable and writable before the
	// simulation starts, not discovered broken when the first shard tries
	// to persist.
	if f := fs.Lookup("checkpoint"); f != nil {
		if dir := f.Value.String(); dir != "" {
			if err := probeWritableDir(dir); err != nil {
				return fmt.Errorf("-checkpoint directory %q is not writable: %v", dir, err)
			}
		}
	}
	if prof != nil {
		if err := prof.Validate(); err != nil {
			return err
		}
	}
	if o != nil {
		if err := o.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// explicitInt reports the value of an int flag and whether the user
// passed it on the command line (fs.Visit walks only set flags).
func explicitInt(fs *flag.FlagSet, name string) (int, bool) {
	f := fs.Lookup(name)
	if f == nil {
		return 0, false
	}
	explicit := false
	fs.Visit(func(v *flag.Flag) {
		if v.Name == name {
			explicit = true
		}
	})
	if !explicit {
		return 0, false
	}
	g, ok := f.Value.(flag.Getter)
	if !ok {
		return 0, false
	}
	n, ok := g.Get().(int)
	return n, ok
}

// probeWritableDir creates dir if needed and verifies a file can be
// written in it, deleting the probe afterwards.
func probeWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	probe.Close()
	return os.Remove(probe.Name())
}
