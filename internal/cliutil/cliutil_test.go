package cliutil

import (
	"flag"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/profiling"
)

// newSet builds a parsed flag set resembling the binaries': a -workers int
// flag plus whatever arguments the test passes on the command line.
func newSet(t *testing.T, argv ...string) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	if err := fs.Parse(argv); err != nil {
		t.Fatalf("parse %v: %v", argv, err)
	}
	return fs
}

func TestValidateSet(t *testing.T) {
	cases := []struct {
		name    string
		argv    []string
		wantErr string
	}{
		{"clean", nil, ""},
		{"workers default", []string{}, ""},
		{"workers positive", []string{"-workers", "4"}, ""},
		{"workers zero explicit", []string{"-workers", "0"}, "-workers"},
		{"workers negative", []string{"-workers", "-3"}, "-workers"},
		{"positional arg", []string{"stray"}, "positional"},
		{"positional after flag", []string{"-workers", "2", "stray"}, "positional"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateSet(newSet(t, c.argv...), nil)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("ValidateSet(%v) = %v, want nil", c.argv, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("ValidateSet(%v) = %v, want error mentioning %q", c.argv, err, c.wantErr)
			}
		})
	}
}

// TestValidateSetWithoutWorkersFlag: binaries without a -workers flag
// (regscan) must pass untouched.
func TestValidateSetWithoutWorkersFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSet(fs, nil); err != nil {
		t.Fatalf("ValidateSet on a workers-less set: %v", err)
	}
}

// TestValidateSetProfilePath: an unwritable profile path fails at
// validation time, a writable one passes.
func TestValidateSetProfilePath(t *testing.T) {
	good := profFlags(t, filepath.Join(t.TempDir(), "cpu.out"))
	if err := ValidateSet(newSet(t), good); err != nil {
		t.Fatalf("writable profile path rejected: %v", err)
	}
	bad := profFlags(t, filepath.Join(t.TempDir(), "missing-dir", "cpu.out"))
	if err := ValidateSet(newSet(t), bad); err == nil {
		t.Fatal("unwritable profile path accepted")
	}
}

// profFlags builds a profiling.Flags with -cpuprofile pointed at path.
func profFlags(t *testing.T, path string) *profiling.Flags {
	t.Helper()
	fs := flag.NewFlagSet("prof", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	p := profiling.RegisterOn(fs)
	if err := fs.Parse([]string{"-cpuprofile", path}); err != nil {
		t.Fatal(err)
	}
	return p
}
