package cliutil

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/profiling"
)

// newSet builds a parsed flag set resembling the binaries': -workers,
// -shards and -checkpoint flags plus whatever arguments the test passes
// on the command line.
func newSet(t *testing.T, argv ...string) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	fs.Int("shards", 0, "shard count (0 = automatic)")
	fs.String("checkpoint", "", "checkpoint directory")
	if err := fs.Parse(argv); err != nil {
		t.Fatalf("parse %v: %v", argv, err)
	}
	return fs
}

func TestValidateSet(t *testing.T) {
	cases := []struct {
		name    string
		argv    []string
		wantErr string
	}{
		{"clean", nil, ""},
		{"workers default", []string{}, ""},
		{"workers positive", []string{"-workers", "4"}, ""},
		{"workers zero explicit", []string{"-workers", "0"}, "-workers"},
		{"workers negative", []string{"-workers", "-3"}, "-workers"},
		{"shards default", []string{}, ""},
		{"shards positive", []string{"-shards", "64"}, ""},
		{"shards zero explicit", []string{"-shards", "0"}, "-shards"},
		{"shards negative", []string{"-shards", "-8"}, "-shards"},
		{"checkpoint empty", []string{"-checkpoint", ""}, ""},
		{"positional arg", []string{"stray"}, "positional"},
		{"positional after flag", []string{"-workers", "2", "stray"}, "positional"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateSet(newSet(t, c.argv...), nil, nil)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("ValidateSet(%v) = %v, want nil", c.argv, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("ValidateSet(%v) = %v, want error mentioning %q", c.argv, err, c.wantErr)
			}
		})
	}
}

// TestValidateSetWithoutWorkersFlag: binaries without a -workers flag
// (regscan) must pass untouched.
func TestValidateSetWithoutWorkersFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSet(fs, nil, nil); err != nil {
		t.Fatalf("ValidateSet on a workers-less set: %v", err)
	}
}

// TestValidateSetProfilePath: an unwritable profile path fails at
// validation time, a writable one passes.
func TestValidateSetProfilePath(t *testing.T) {
	good := profFlags(t, filepath.Join(t.TempDir(), "cpu.out"))
	if err := ValidateSet(newSet(t), good, nil); err != nil {
		t.Fatalf("writable profile path rejected: %v", err)
	}
	bad := profFlags(t, filepath.Join(t.TempDir(), "missing-dir", "cpu.out"))
	if err := ValidateSet(newSet(t), bad, nil); err == nil {
		t.Fatal("unwritable profile path accepted")
	}
}

// TestValidateSetCheckpointDir: a creatable checkpoint directory passes
// (and is created by the probe), an uncreatable one is a usage error.
func TestValidateSetCheckpointDir(t *testing.T) {
	good := filepath.Join(t.TempDir(), "ckpt", "nested")
	if err := ValidateSet(newSet(t, "-checkpoint", good), nil, nil); err != nil {
		t.Fatalf("creatable checkpoint dir rejected: %v", err)
	}
	if fi, err := os.Stat(good); err != nil || !fi.IsDir() {
		t.Fatalf("probe did not create %s: %v", good, err)
	}

	// A path under a regular file can never become a directory.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(file, "sub")
	err := ValidateSet(newSet(t, "-checkpoint", bad), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("unwritable checkpoint dir: err = %v, want -checkpoint usage error", err)
	}
}

// profFlags builds a profiling.Flags with -cpuprofile pointed at path.
func profFlags(t *testing.T, path string) *profiling.Flags {
	t.Helper()
	fs := flag.NewFlagSet("prof", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	p := profiling.RegisterOn(fs)
	if err := fs.Parse([]string{"-cpuprofile", path}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestValidateSetObsFlags: the shared observability flags are validated
// alongside the rest — a bad level or format is a usage error, good ones
// pass and cache the parsed level.
func TestValidateSetObsFlags(t *testing.T) {
	obsFlags := func(t *testing.T, argv ...string) *obs.Flags {
		t.Helper()
		fs := flag.NewFlagSet("obs", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		o := &obs.Flags{}
		o.RegisterFlags(fs)
		if err := fs.Parse(argv); err != nil {
			t.Fatal(err)
		}
		return o
	}
	if err := ValidateSet(newSet(t), nil, obsFlags(t, "-log-level", "debug", "-log-format", "json", "-trace")); err != nil {
		t.Fatalf("valid obs flags rejected: %v", err)
	}
	if err := ValidateSet(newSet(t), nil, obsFlags(t, "-log-level", "chatty")); err == nil {
		t.Fatal("unknown -log-level accepted")
	}
	if err := ValidateSet(newSet(t), nil, obsFlags(t, "-log-format", "xml")); err == nil {
		t.Fatal("unknown -log-format accepted")
	}
}
