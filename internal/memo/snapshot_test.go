package memo

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// fillValue is a snapshot-friendly value type: exported fields only.
type fillValue struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func mustGet[K comparable, V any](t *testing.T, c *Cache[K, V], k K, v V) {
	t.Helper()
	if _, err := c.Get(k, func() (V, error) { return v, nil }); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRoundTrip saves a warm cache, purges it and loads the
// snapshot back: every settled entry returns, nothing recomputes.
func TestSnapshotRoundTrip(t *testing.T) {
	c := New[string, fillValue]("test.snapshot.roundtrip", 8)
	EnableSnapshot(c)
	mustGet(t, c, "a", fillValue{N: 1, S: "one"})
	mustGet(t, c, "b", fillValue{N: 2, S: "two"})

	path := filepath.Join(t.TempDir(), "memo.snapshot")
	saved, err := SaveSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Entries < 2 {
		t.Fatalf("saved %+v, want at least the 2 entries of this cache", saved)
	}

	c.Purge()
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Skipped != 0 {
		t.Fatalf("load skipped %d entries, want 0", loaded.Skipped)
	}
	if c.Len() != 2 {
		t.Fatalf("restored cache holds %d entries, want 2", c.Len())
	}
	for k, want := range map[string]fillValue{"a": {1, "one"}, "b": {2, "two"}} {
		got, err := c.Get(k, func() (fillValue, error) {
			t.Fatalf("restored key %q recomputed", k)
			return fillValue{}, nil
		})
		if err != nil || got != want {
			t.Fatalf("restored %q = %+v (%v), want %+v", k, got, err, want)
		}
	}
}

// TestSnapshotSeedsOnlyAbsentKeys pins the live-state-wins rule: a key
// the process already filled keeps its live value through a load.
func TestSnapshotSeedsOnlyAbsentKeys(t *testing.T) {
	c := New[string, fillValue]("test.snapshot.absent", 8)
	EnableSnapshot(c)
	mustGet(t, c, "k", fillValue{N: 1, S: "snapshotted"})
	path := filepath.Join(t.TempDir(), "memo.snapshot")
	if _, err := SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	c.Purge()
	mustGet(t, c, "k", fillValue{N: 2, S: "live"})
	if _, err := LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get("k", func() (fillValue, error) { return fillValue{}, nil })
	if got.S != "live" {
		t.Fatalf("load overwrote a live entry with %+v", got)
	}
}

// TestSnapshotRespectsCapacity: seeding never evicts and never pushes a
// cache past its cap, so a snapshot from a bigger (or differently
// configured) cache degrades to "restore what fits".
func TestSnapshotRespectsCapacity(t *testing.T) {
	big := New[string, fillValue]("test.snapshot.cap", 8)
	EnableSnapshot(big)
	for _, k := range []string{"a", "b", "c", "d"} {
		mustGet(t, big, k, fillValue{N: 1})
	}
	path := filepath.Join(t.TempDir(), "memo.snapshot")
	if _, err := SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	big.Purge()
	mustGet(t, big, "live1", fillValue{N: 9})
	big.cap = 2 // shrink in place: only one snapshot slot still fits
	st, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if big.Len() != 2 {
		t.Fatalf("cache over capacity after load: len %d, cap 2", big.Len())
	}
	if st.Skipped == 0 {
		t.Fatal("over-capacity entries were not counted as skipped")
	}
}

// TestSnapshotMissingFileIsErrNotExist keeps the cold-start contract
// testable for the daemon: no snapshot yet is fs.ErrNotExist, not a
// format error.
func TestSnapshotMissingFileIsErrNotExist(t *testing.T) {
	_, err := LoadSnapshot(filepath.Join(t.TempDir(), "absent"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing snapshot error = %v, want fs.ErrNotExist", err)
	}
}

// TestSnapshotRejectsWrongVersion: a future format must read as a clean
// failure, never as seeded garbage.
func TestSnapshotRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.snapshot")
	if err := os.WriteFile(path, []byte(`{"version":99,"caches":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("version 99 snapshot loaded without error")
	}
}

// TestSnapshotSkipsUndecodableEntries: one rotten entry is counted and
// dropped; its neighbors still seed.
func TestSnapshotSkipsUndecodableEntries(t *testing.T) {
	c := New[string, fillValue]("test.snapshot.rot", 8)
	EnableSnapshot(c)
	path := filepath.Join(t.TempDir(), "memo.snapshot")
	raw := `{"version":1,"caches":{"test.snapshot.rot":[` +
		`{"k":"good","v":{"n":3,"s":"x"}},` +
		`{"k":42,"v":{"n":1,"s":"y"}}]}}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 1 || c.Len() != 1 {
		t.Fatalf("load = %+v with %d entries, want 1 seeded + 1 skipped", st, c.Len())
	}
}
