// Snapshot support: caches whose keys and values survive a JSON round
// trip can opt in (EnableSnapshot) to disk snapshots, so a restarting
// replica comes back warm instead of re-deriving every memoized value
// from scratch. SaveSnapshot serializes every opted-in cache into one
// atomically written, fsynced file; LoadSnapshot seeds entries back —
// but only where the slot is still absent, so a live fill always beats
// stale disk state.
//
// Opting in is a per-cache decision precisely because the codec is JSON:
// a key type with unexported fields would marshal as "{}" and collide
// every entry into one. Only caches whose K and V round-trip faithfully
// may be enabled.

package memo

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// snapshotVersion guards the file format. A version bump makes old
// snapshots load as a clean miss (error), never as garbage entries.
const snapshotVersion = 1

// snapshotEntry is one cached slot on disk: key and value as raw JSON.
type snapshotEntry struct {
	K json.RawMessage `json:"k"`
	V json.RawMessage `json:"v"`
}

// snapshotFile is the on-disk layout: entries per cache name, each list
// ordered most-recently-used first so a restore preserves LRU order.
type snapshotFile struct {
	Version int                        `json:"version"`
	Caches  map[string][]snapshotEntry `json:"caches"`
}

// snapshotter is the type-erased view of an opted-in cache.
type snapshotter interface {
	snapshotName() string
	exportEntries() []snapshotEntry
	importEntries([]snapshotEntry) (seeded, skipped int)
}

var snapshotRegistry struct {
	mu     sync.Mutex
	caches []snapshotter
}

// EnableSnapshot opts c into Save/LoadSnapshot. K and V must survive a
// JSON round trip (marshal then unmarshal yields an equivalent value);
// entries that fail to encode are silently dropped from snapshots, and
// entries that fail to decode are counted as skipped on load.
func EnableSnapshot[K comparable, V any](c *Cache[K, V]) {
	snapshotRegistry.mu.Lock()
	defer snapshotRegistry.mu.Unlock()
	snapshotRegistry.caches = append(snapshotRegistry.caches, jsonCodec[K, V]{c})
}

// jsonCodec adapts a concrete Cache to the snapshotter interface.
type jsonCodec[K comparable, V any] struct{ c *Cache[K, V] }

func (j jsonCodec[K, V]) snapshotName() string { return j.c.name }

// exportEntries walks the LRU list front (MRU) to back, keeping only
// settled, successful fills. In-flight fills are skipped — their value
// does not exist yet — as are entries the codec cannot express.
func (j jsonCodec[K, V]) exportEntries() []snapshotEntry {
	c := j.c
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]snapshotEntry, 0, len(c.entries))
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		select {
		case <-e.ready:
		default:
			continue // fill still running
		}
		if e.err != nil {
			continue
		}
		k, err := json.Marshal(e.key)
		if err != nil {
			continue
		}
		v, err := json.Marshal(e.val)
		if err != nil {
			continue
		}
		out = append(out, snapshotEntry{K: k, V: v})
	}
	return out
}

// importEntries seeds decoded entries in file order. Because the file is
// MRU-first and seed appends at the LRU back, the restored cache keeps
// the snapshot's eviction order behind anything already live.
func (j jsonCodec[K, V]) importEntries(entries []snapshotEntry) (seeded, skipped int) {
	for _, se := range entries {
		var k K
		var v V
		if json.Unmarshal(se.K, &k) != nil || json.Unmarshal(se.V, &v) != nil {
			skipped++
			continue
		}
		if j.c.seed(k, v) {
			seeded++
		} else {
			skipped++
		}
	}
	return seeded, skipped
}

// seed inserts a completed entry at the LRU back if the key is absent
// and the cache has room, reporting whether it took. Live state wins:
// an existing slot (even an in-flight fill) is never replaced, and
// seeding never evicts. Counters are untouched — a restored entry is
// neither a hit nor a miss until someone asks for it.
func (c *Cache[K, V]) seed(key K, val V) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	if len(c.entries) >= c.cap {
		return false
	}
	e := &entry[K, V]{key: key, ready: make(chan struct{}), val: val}
	close(e.ready)
	c.entries[key] = c.lru.PushBack(e)
	return true
}

// SnapshotStats summarizes one Save or Load.
type SnapshotStats struct {
	Caches  int // caches written (save) or matched by name (load)
	Entries int // entries written (save) or seeded (load)
	Skipped int // load only: undecodable, duplicate or over-capacity entries
}

// SaveSnapshot writes every opted-in cache to path. The write is atomic
// (temp file + rename) and durable (file and parent directory fsynced),
// so a crash mid-save leaves either the old snapshot or the new one,
// never a torn file.
func SaveSnapshot(path string) (SnapshotStats, error) {
	snapshotRegistry.mu.Lock()
	caches := make([]snapshotter, len(snapshotRegistry.caches))
	copy(caches, snapshotRegistry.caches)
	snapshotRegistry.mu.Unlock()

	file := snapshotFile{Version: snapshotVersion, Caches: map[string][]snapshotEntry{}}
	var st SnapshotStats
	for _, c := range caches {
		entries := c.exportEntries()
		file.Caches[c.snapshotName()] = entries
		st.Caches++
		st.Entries += len(entries)
	}
	buf, err := json.Marshal(file)
	if err != nil {
		return SnapshotStats{}, fmt.Errorf("memo: encode snapshot: %w", err)
	}
	if err := writeFileDurable(path, append(buf, '\n')); err != nil {
		return SnapshotStats{}, fmt.Errorf("memo: write snapshot %s: %w", path, err)
	}
	return st, nil
}

// LoadSnapshot reads path and seeds every opted-in cache whose name
// appears in the file. Absent keys only: anything the process already
// computed (or is computing) is left alone. A missing file is an error
// the caller can test with errors.Is(err, fs.ErrNotExist).
func LoadSnapshot(path string) (SnapshotStats, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return SnapshotStats{}, err
	}
	var file snapshotFile
	if err := json.Unmarshal(buf, &file); err != nil {
		return SnapshotStats{}, fmt.Errorf("memo: decode snapshot %s: %w", path, err)
	}
	if file.Version != snapshotVersion {
		return SnapshotStats{}, fmt.Errorf("memo: snapshot %s has version %d, want %d",
			path, file.Version, snapshotVersion)
	}

	snapshotRegistry.mu.Lock()
	caches := make([]snapshotter, len(snapshotRegistry.caches))
	copy(caches, snapshotRegistry.caches)
	snapshotRegistry.mu.Unlock()

	var st SnapshotStats
	for _, c := range caches {
		entries, ok := file.Caches[c.snapshotName()]
		if !ok {
			continue
		}
		st.Caches++
		seeded, skipped := c.importEntries(entries)
		st.Entries += seeded
		st.Skipped += skipped
	}
	return st, nil
}

// writeFileDurable is write-temp, fsync, rename, fsync-directory: the
// same discipline the job checkpoint layer uses, so the renamed entry
// itself survives a crash (an fsynced file behind an unsynced directory
// entry is still a lost file).
func writeFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".memo-snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
