// Package memo provides a small, generic, concurrency-safe memoization
// layer for the simulation pipeline: size-bounded caches with
// singleflight-style fill (concurrent requests for the same key compute
// the value once), LRU eviction, and hit/miss/eviction counters exposed
// through a package-level registry so command-line tools can report cache
// effectiveness (-stats).
//
// The caches here memoize derived quantities that are expensive to
// recompute and cheap to key — critical-area curves keyed by a layout
// content hash, size-averaged critical fractions keyed by hash plus the
// defect-size distribution — so design-space sweeps that revisit the same
// geometry stop paying for identical extractions.
//
// Cached values may be shared between callers: treat them as immutable.
package memo

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Cache is a size-bounded, concurrency-safe memoization cache from K to V
// with LRU eviction. The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	name string
	cap  int

	mu      sync.Mutex
	entries map[K]*list.Element
	lru     *list.List // front = most recently used; elements hold *entry[K, V]

	hits, misses, evictions uint64
}

// entry is one cache slot. ready is closed once val/err are populated, so
// concurrent Get calls for an in-flight key block on the first caller's
// fill instead of recomputing (singleflight).
type entry[K comparable, V any] struct {
	key   K
	ready chan struct{}
	val   V
	err   error
}

// New returns an empty cache holding at most capacity entries and
// registers it in the package registry so Stats reports it. The name
// identifies the cache in stats dumps; it panics on a non-positive
// capacity.
func New[K comparable, V any](name string, capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic(fmt.Sprintf("memo: cache %q capacity must be positive, got %d", name, capacity))
	}
	c := &Cache[K, V]{
		name:    name,
		cap:     capacity,
		entries: make(map[K]*list.Element),
		lru:     list.New(),
	}
	register(c)
	return c
}

// Get returns the cached value for key, filling it with fill on a miss.
// Concurrent calls for the same key run fill once and share the result.
// A fill error is returned to every waiter but is not cached: the slot is
// dropped exactly once (by the filling goroutine) and the next Get for the
// key retries. Accounting matches what callers observed: only accesses
// that resolved to a usable value count as hits, so the filler and every
// waiter of a failed fill count as misses.
func (c *Cache[K, V]) Get(key K, fill func() (V, error)) (V, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		<-e.ready
		// Classify the access only after the fill resolved: a waiter that
		// joined an in-flight fill which then failed never received a usable
		// cached value, so counting it as a hit would overstate cache
		// effectiveness by exactly the number of waiters on every failing
		// fill. The errored slot itself is dropped exactly once, by the
		// filling goroutine below — waiters still hold e but never touch the
		// LRU list for it.
		c.mu.Lock()
		if e.err != nil {
			c.misses++
		} else {
			c.hits++
		}
		c.mu.Unlock()
		return e.val, e.err
	}
	c.misses++
	e := &entry[K, V]{key: key, ready: make(chan struct{})}
	el := c.lru.PushFront(e)
	c.entries[key] = el
	for len(c.entries) > c.cap {
		oldest := c.lru.Back()
		victim := oldest.Value.(*entry[K, V])
		c.lru.Remove(oldest)
		delete(c.entries, victim.key)
		c.evictions++
	}
	c.mu.Unlock()

	v, err := fill()
	c.mu.Lock()
	e.val, e.err = v, err
	if err != nil {
		// Failures are not cached; drop the slot (unless it was already
		// evicted or replaced) so the next Get retries.
		if cur, ok := c.entries[key]; ok && cur == el {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return v, err
}

// Len returns the number of cached entries (including in-flight fills).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached entry. Counters are preserved: they describe
// the process lifetime, not the current contents. In-flight fills
// complete normally but their slots are forgotten.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[K]*list.Element)
	c.lru.Init()
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Name:      c.name,
		Capacity:  c.cap,
		Len:       len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// CacheStats is a point-in-time snapshot of one cache's effectiveness.
type CacheStats struct {
	Name      string
	Capacity  int
	Len       int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits/(hits+misses), or 0 with no traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// purger is the type-erased view of a cache the registry holds.
type purger interface {
	Purge()
	stats() CacheStats
}

func (c *Cache[K, V]) stats() CacheStats { return c.Stats() }

var registry struct {
	mu     sync.Mutex
	caches []purger
}

func register(c purger) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.caches = append(registry.caches, c)
}

// Stats returns a snapshot of every registered cache, sorted by name.
func Stats() []CacheStats {
	registry.mu.Lock()
	caches := make([]purger, len(registry.caches))
	copy(caches, registry.caches)
	registry.mu.Unlock()
	out := make([]CacheStats, len(caches))
	for i, c := range caches {
		out[i] = c.stats()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// PurgeAll empties every registered cache (counters are preserved). Tests
// and cold-cache benchmarks use it to re-establish a cold start.
func PurgeAll() {
	registry.mu.Lock()
	caches := make([]purger, len(registry.caches))
	copy(caches, registry.caches)
	registry.mu.Unlock()
	for _, c := range caches {
		c.Purge()
	}
}

// StatsString formats the registry snapshot as an aligned table, one
// cache per line — the payload behind the CLI -stats flag.
func StatsString() string {
	stats := Stats()
	if len(stats) == 0 {
		return "memo: no caches registered\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %8s %8s %10s %10s %10s %8s\n",
		"cache", "len", "cap", "hits", "misses", "evicted", "hit%")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-32s %8d %8d %10d %10d %10d %7.1f%%\n",
			s.Name, s.Len, s.Capacity, s.Hits, s.Misses, s.Evictions, 100*s.HitRate())
	}
	return b.String()
}
