package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetFillsOncePerKey(t *testing.T) {
	c := New[int, int]("test.fill-once", 8)
	calls := 0
	fill := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 5; i++ {
		v, err := c.Get(7, fill)
		if err != nil {
			t.Fatal(err)
		}
		if v != 42 {
			t.Fatalf("value = %d", v)
		}
	}
	if calls != 1 {
		t.Fatalf("fill ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 4 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 4 hits / 1 miss", s)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[string, int]("test.errors", 8)
	boom := errors.New("boom")
	calls := 0
	if _, err := c.Get("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed fill left %d entries", c.Len())
	}
	v, err := c.Get("k", func() (int, error) { calls++; return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("fill ran %d times, want 2 (error retried)", calls)
	}
}

// TestFailedFillWaitersCountAsMisses is the regression test for the
// singleflight error-path accounting skew: goroutines that join an
// in-flight fill which then fails must be counted as misses (they never
// got a usable value), and the errored slot must be dropped exactly once
// while the waiters still hold the entry.
func TestFailedFillWaitersCountAsMisses(t *testing.T) {
	c := New[int, int]("test.failed-fill-waiters", 8)
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Get(1, func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("filler err = %v, want boom", err)
		}
	}()
	<-started

	// Waiters join while the fill is in flight. Their own fill also fails,
	// so the accounting assertion below holds on every interleaving: a
	// waiter either blocks on the in-flight fill (miss via the error path)
	// or, arriving after the drop, runs its own failing fill (plain miss).
	const waiters = 8
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Get(1, func() (int, error) { return 0, boom })
			if !errors.Is(err, boom) {
				t.Errorf("waiter err = %v, want boom", err)
			}
		}()
	}
	// Give the waiters a moment to actually block on the in-flight entry so
	// the singleflight path is exercised, then let the fill fail.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	s := c.Stats()
	if s.Hits != 0 {
		t.Fatalf("hits = %d after failing fills, want 0", s.Hits)
	}
	if s.Misses != waiters+1 {
		t.Fatalf("misses = %d, want %d (filler + every waiter)", s.Misses, waiters+1)
	}
	if s.Evictions != 0 {
		t.Fatalf("evictions = %d; the errored drop must not count as an LRU eviction", s.Evictions)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after failed fill, want 0 (slot dropped exactly once)", c.Len())
	}

	// The key is retryable and a success counts as the usual miss-then-hit.
	v, err := c.Get(1, func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if _, err := c.Get(1, func() (int, error) {
		t.Error("cached value refilled")
		return 0, nil
	}); err != nil {
		t.Fatalf("cached retry errored: %v", err)
	}
	s = c.Stats()
	if s.Hits != 1 || s.Misses != waiters+2 {
		t.Fatalf("post-retry stats = %+v, want 1 hit / %d misses", s, waiters+2)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int]("test.lru", 2)
	fill := func(v int) func() (int, error) { return func() (int, error) { return v, nil } }
	c.Get(1, fill(1))
	c.Get(2, fill(2))
	c.Get(1, fill(1)) // touch 1: now 2 is least-recent
	c.Get(3, fill(3)) // evicts 2
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	touched := false
	c.Get(1, func() (int, error) { touched = true; return 0, nil })
	if touched {
		t.Fatal("recently-used key 1 was evicted")
	}
	refilled := false
	c.Get(2, func() (int, error) { refilled = true; return 2, nil })
	if !refilled {
		t.Fatal("evicted key 2 served from cache")
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestSingleflightConcurrent(t *testing.T) {
	c := New[int, int]("test.singleflight", 8)
	var calls atomic.Int64
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, err := c.Get(5, func() (int, error) {
				calls.Add(1)
				return 55, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fill ran %d times under concurrency, want 1", n)
	}
	for i, v := range results {
		if v != 55 {
			t.Fatalf("worker %d got %d", i, v)
		}
	}
}

func TestPurgePreservesCounters(t *testing.T) {
	c := New[int, int]("test.purge", 8)
	c.Get(1, func() (int, error) { return 1, nil })
	c.Get(1, func() (int, error) { return 1, nil })
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("counters reset by purge: %+v", s)
	}
}

func TestStatsRegistryAndString(t *testing.T) {
	c := New[int, int]("test.registry", 4)
	c.Get(1, func() (int, error) { return 1, nil })
	found := false
	for _, s := range Stats() {
		if s.Name == "test.registry" {
			found = true
			if s.Misses != 1 {
				t.Fatalf("registry snapshot = %+v", s)
			}
		}
	}
	if !found {
		t.Fatal("cache missing from registry")
	}
	if out := StatsString(); out == "" {
		t.Fatal("empty stats dump")
	}
}

func TestHitRate(t *testing.T) {
	if r := (CacheStats{}).HitRate(); r != 0 {
		t.Fatalf("zero-traffic hit rate = %v", r)
	}
	if r := (CacheStats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", r)
	}
}

func TestCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive capacity accepted")
		}
	}()
	New[int, int]("test.bad-cap", 0)
}

func TestDistinctKeysUnderCapacity(t *testing.T) {
	c := New[string, string]("test.distinct", 64)
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("k%d", i)
		v, err := c.Get(k, func() (string, error) { return "v" + k, nil })
		if err != nil || v != "v"+k {
			t.Fatalf("key %s: %q, %v", k, v, err)
		}
	}
	if c.Len() != 32 {
		t.Fatalf("len = %d", c.Len())
	}
}
