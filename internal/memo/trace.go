package memo

import (
	"context"

	"repro/internal/obs"
)

// GetCtx is Get with trace instrumentation: when the key misses and this
// caller runs the fill, the fill executes under a "memo.fill" child span
// of ctx's active trace (attribute cache=<name>), and receives the
// span-derived context so work inside the fill (sweeps, pool jobs) nests
// under it. Hits never open a span — the whole point of a hit is that no
// interesting work happens — and on an untraced context the overhead is
// one nil check. Waiters joining an in-flight fill do not get a span
// either: the computation belongs to the trace that started it.
func (c *Cache[K, V]) GetCtx(ctx context.Context, key K, fill func(ctx context.Context) (V, error)) (V, error) {
	return c.Get(key, func() (V, error) {
		fctx, span := obs.StartSpan(ctx, "memo.fill")
		if span != nil {
			span.SetAttr("cache", c.name)
			defer span.End()
		}
		return fill(fctx)
	})
}
