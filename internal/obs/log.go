package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the CLI's -log-level spelling onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a slog.Logger with the shared handler configuration:
// format is "text" (the human-readable key=value default) or "json"
// (one object per line for log shippers). Both carry the same keys, so
// the access-log schema is identical either way.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
}

// Flags is the observability surface every binary shares:
// -log-level, -log-format and -trace. Register it on a FlagSet, validate
// after parsing, then build the logger and (for the CLIs) wrap the run
// in StartRoot/Finish to get the per-stage timing tree.
type Flags struct {
	LogLevel  string
	LogFormat string
	Trace     bool

	level  slog.Level
	tracer *Tracer
	root   *Span
}

// RegisterFlags installs the shared flags on fs.
func (f *Flags) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&f.LogLevel, "log-level", "info", "log level: debug|info|warn|error")
	fs.StringVar(&f.LogFormat, "log-format", "text", "log format: text|json")
	fs.BoolVar(&f.Trace, "trace", false, "trace the run and print a per-stage timing tree")
}

// Validate checks the flag values, caching the parsed level.
func (f *Flags) Validate() error {
	level, err := ParseLevel(f.LogLevel)
	if err != nil {
		return err
	}
	f.level = level
	if _, err := NewLogger(io.Discard, level, f.LogFormat); err != nil {
		return err
	}
	return nil
}

// Level returns the parsed log level. Call Validate first.
func (f *Flags) Level() slog.Level { return f.level }

// Logger builds the configured logger writing to w. Call Validate first.
func (f *Flags) Logger(w io.Writer) *slog.Logger {
	log, err := NewLogger(w, f.level, f.LogFormat)
	if err != nil {
		// Validate accepted the format, so this cannot fail; keep the
		// binary running on the default rather than panicking.
		log = slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: f.level}))
	}
	return log
}

// StartRoot begins a CLI run's trace when -trace is set, returning the
// derived context. Without -trace it returns ctx unchanged and the later
// Finish is a no-op.
func (f *Flags) StartRoot(ctx context.Context, name string) context.Context {
	if !f.Trace {
		return ctx
	}
	f.tracer = NewTracer(1, nil)
	ctx, f.root = f.tracer.StartRoot(ctx, "", name)
	return ctx
}

// Finish ends the run's root span and prints the timing tree to w.
func (f *Flags) Finish(w io.Writer) {
	if f.root == nil {
		return
	}
	traceID := f.root.TraceID()
	f.root.End()
	f.root = nil
	if trace, ok := f.tracer.Lookup(traceID); ok {
		fmt.Fprint(w, trace.Format())
	}
}
