package obs

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseFamilies splits an exposition body into family→type plus raw
// sample lines, failing on duplicate TYPE declarations (the contiguity
// invariant: a family renders exactly one block).
func parseFamilies(t *testing.T, body []byte) (types map[string]string, samples []string) {
	t.Helper()
	types = map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("family %s declared twice: non-contiguous scrape", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		samples = append(samples, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types, samples
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("demo_ops_total", "Operations.")
	c.Add(41)
	c.Inc()
	vec := r.NewCounterVec("demo_results_total", "Results by label.", "route", "code")
	vec.With("/v1/cost", "200").Add(3)
	vec.With(`we"ird\npath`+"\n", "400").Inc()
	g := r.NewGauge("demo_in_flight", "In-flight.")
	g.Add(5)
	g.Add(-2)
	gv := r.NewGaugeVec("demo_replica_up", "Per-replica health.", "replica")
	gv.With("127.0.0.1:8087").Set(1)
	gv.With("127.0.0.1:8088").Set(1)
	gv.With("127.0.0.1:8088").Set(0)
	if got := gv.Value("127.0.0.1:8088"); got != 0 {
		t.Fatalf("GaugeVec.Value after re-Set = %d, want 0", got)
	}
	if got := gv.Value("127.0.0.1:9999"); got != 0 {
		t.Fatalf("GaugeVec.Value of unused labels = %d, want 0", got)
	}
	r.NewGaugeFunc("demo_ratio", "Computed at scrape.", func() float64 { return 0.25 })
	fg := r.NewFloatGauge("demo_rate", "Pushed rate.")
	fg.Set(12.5)
	fg.Set(1234567.25)
	if got := fg.Value(); got != 1234567.25 {
		t.Fatalf("FloatGauge.Value() = %v", got)
	}
	h := r.NewHistogramOn("demo_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	hv := r.NewHistogramVec("demo_span_seconds", "Span durations.", []float64{0.01, 1}, "stage")
	hv.With("core.eval").Observe(0.002)
	hv.With("core.eval").Observe(2)
	hv.With("memo.fill").Observe(0.5)
	r.RegisterGoRuntime()

	var buf bytes.Buffer
	r.Render(&buf)
	body := buf.Bytes()
	types, samples := parseFamilies(t, body)

	for family, want := range map[string]string{
		"demo_ops_total":               "counter",
		"demo_results_total":           "counter",
		"demo_in_flight":               "gauge",
		"demo_replica_up":              "gauge",
		"demo_ratio":                   "gauge",
		"demo_rate":                    "gauge",
		"demo_seconds":                 "histogram",
		"demo_span_seconds":            "histogram",
		"go_goroutines":                "gauge",
		"go_memstats_heap_alloc_bytes": "gauge",
		"go_gc_pause_seconds_total":    "counter",
	} {
		if got := types[family]; got != want {
			t.Errorf("family %s TYPE = %q, want %q", family, got, want)
		}
	}

	for _, want := range []string{
		"demo_ops_total 42",
		`demo_results_total{route="/v1/cost",code="200"} 3`,
		`demo_results_total{route="we\"ird\\npath\n",code="400"} 1`,
		"demo_in_flight 3",
		`demo_replica_up{replica="127.0.0.1:8087"} 1`,
		`demo_replica_up{replica="127.0.0.1:8088"} 0`,
		"demo_ratio 0.25",
		"demo_rate 1.23456725e+06",
		`demo_seconds_bucket{le="0.01"} 1`,
		`demo_seconds_bucket{le="0.1"} 2`,
		`demo_seconds_bucket{le="1"} 3`,
		`demo_seconds_bucket{le="+Inf"} 4`,
		"demo_seconds_count 4",
		`demo_span_seconds_bucket{stage="core.eval",le="+Inf"} 2`,
		`demo_span_seconds_count{stage="core.eval"} 2`,
		`demo_span_seconds_count{stage="memo.fill"} 1`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Histogram buckets must be cumulative within a labelled child.
	var prev uint64
	for _, line := range samples {
		if !strings.HasPrefix(line, `demo_span_seconds_bucket{stage="core.eval"`) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket %q = %d < previous %d: not cumulative", line, v, prev)
		}
		prev = v
	}

	// Go runtime families carry live values.
	for _, prefix := range []string{"go_goroutines ", "go_memstats_heap_alloc_bytes ", "go_gc_pause_seconds_total "} {
		found := false
		for _, line := range samples {
			if strings.HasPrefix(line, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no sample with prefix %q", prefix)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("second registration of dup_total did not panic")
		}
	}()
	r.NewGauge("dup_total", "")
}

// TestRegistryConcurrency hammers registration, recording and scraping
// from many goroutines; its value is running under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	vec := r.NewCounterVec("conc_total", "", "worker")
	h := r.NewHistogramOn("conc_seconds", "", DurationBuckets)
	hv := r.NewHistogramVec("conc_span_seconds", "", DurationBuckets, "stage")
	var wg sync.WaitGroup
	const workers = 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := strconv.Itoa(i)
			r.NewCounter("conc_reg_"+name+"_total", "")
			for j := 0; j < 500; j++ {
				vec.With(name).Inc()
				h.Observe(float64(j) / 1e4)
				hv.With("stage" + strconv.Itoa(j%3)).Observe(0.001)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for j := 0; j < 50; j++ {
				buf.Reset()
				r.Render(&buf)
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := 0; i < workers; i++ {
		total += vec.Value(strconv.Itoa(i))
	}
	if total != workers*500 {
		t.Fatalf("counter total = %d, want %d", total, workers*500)
	}
	if h.Count() != workers*500 {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*500)
	}
}

func TestHistogramSumAndCount(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	cum, sum, count := h.snapshot()
	if count != 3 || sum != 5 {
		t.Fatalf("sum/count = %v/%d, want 5/3", sum, count)
	}
	if cum[0] != 1 || cum[1] != 2 {
		t.Fatalf("cumulative buckets = %v, want [1 2]", cum)
	}
}
