package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceTreeAndLookup(t *testing.T) {
	reg := NewRegistry()
	spans := reg.NewHistogramVec("span_seconds", "", DurationBuckets, "stage")
	tr := NewTracer(8, spans)

	ctx, root := tr.StartRoot(context.Background(), "req-1", "serve.request")
	root.SetAttr("method", "POST")
	ctx2, eval := StartSpan(ctx, "core.eval")
	_, fill := StartSpan(ctx2, "memo.fill")
	fill.SetAttr("cache", "serve.figures")
	fill.End()
	eval.End()
	_, sweep := StartSpan(ctx, "core.sweep_sd")
	sweep.End()
	root.End()

	trace, ok := tr.Lookup("req-1")
	if !ok {
		t.Fatal("trace req-1 not retrievable after root End")
	}
	if len(trace.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(trace.Spans))
	}

	roots := trace.Tree()
	if len(roots) != 1 || roots[0].Name != "serve.request" {
		t.Fatalf("tree roots = %+v, want single serve.request", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root has %d children, want 2 (core.eval, core.sweep_sd)", len(roots[0].Children))
	}
	if roots[0].Children[0].Name != "core.eval" {
		t.Errorf("first child = %s, want core.eval (start order)", roots[0].Children[0].Name)
	}
	if len(roots[0].Children[0].Children) != 1 || roots[0].Children[0].Children[0].Name != "memo.fill" {
		t.Errorf("core.eval child = %+v, want memo.fill", roots[0].Children[0].Children)
	}
	if got := roots[0].Children[0].Children[0].Attrs["cache"]; got != "serve.figures" {
		t.Errorf("memo.fill cache attr = %q", got)
	}

	out := trace.Format()
	for _, want := range []string{"trace req-1", "serve.request", "  core.eval", "    memo.fill cache=serve.figures", "  core.sweep_sd"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q in:\n%s", want, out)
		}
	}

	// Each stage fed the histogram exactly once.
	for _, stage := range []string{"serve.request", "core.eval", "memo.fill", "core.sweep_sd"} {
		if n := spans.With(stage).Count(); n != 1 {
			t.Errorf("span histogram for %s has %d observations, want 1", stage, n)
		}
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2, nil)
	for i := 0; i < 3; i++ {
		_, root := tr.StartRoot(context.Background(), fmt.Sprintf("t%d", i), "root")
		root.End()
	}
	if tr.Len() != 2 {
		t.Fatalf("ring holds %d traces, want 2", tr.Len())
	}
	if _, ok := tr.Lookup("t0"); ok {
		t.Error("oldest trace t0 survived eviction")
	}
	for _, id := range []string{"t1", "t2"} {
		if _, ok := tr.Lookup(id); !ok {
			t.Errorf("trace %s evicted too early", id)
		}
	}
}

func TestSpanCapPerTrace(t *testing.T) {
	tr := NewTracer(1, nil)
	ctx, root := tr.StartRoot(context.Background(), "big", "root")
	const extra = 100
	for i := 0; i < maxSpansPerTrace+extra; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	trace, ok := tr.Lookup("big")
	if !ok {
		t.Fatal("trace not committed")
	}
	if len(trace.Spans) != maxSpansPerTrace {
		t.Errorf("retained %d spans, want cap %d", len(trace.Spans), maxSpansPerTrace)
	}
	// root itself is the +1 that got dropped along with the overflow.
	if trace.DroppedSpans != extra+1 {
		t.Errorf("dropped = %d, want %d", trace.DroppedSpans, extra+1)
	}
}

// TestUntracedStartSpanAllocs is the zero-cost contract: on a context
// with no active trace, StartSpan must not allocate — this is what keeps
// permanently instrumented hot paths (TransistorCostCtx) alloc-free.
func TestUntracedStartSpanAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, "core.eval")
		sp.SetAttr("k", "v")
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("untraced StartSpan allocates %v times per run, want 0", allocs)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.End()
	sp.End()
	if sp.TraceID() != "" || sp.Name() != "" {
		t.Error("nil span accessors must return empty strings")
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Errorf("SpanFromContext on bare ctx = %v, want nil", got)
	}
}

// TestConcurrentSpanRecording exercises many goroutines opening and
// ending child spans of one trace while other traces commit into the
// ring; run under -race.
func TestConcurrentSpanRecording(t *testing.T) {
	reg := NewRegistry()
	spans := reg.NewHistogramVec("cc_span_seconds", "", DurationBuckets, "stage")
	tr := NewTracer(4, spans)
	ctx, root := tr.StartRoot(context.Background(), "conc", "root")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c2, sp := StartSpan(ctx, "worker")
				_, inner := StartSpan(c2, "inner")
				inner.End()
				sp.End()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, r := tr.StartRoot(context.Background(), fmt.Sprintf("other-%d", i), "root")
			r.End()
			tr.Lookup("conc")
		}(i)
	}
	wg.Wait()
	root.End()

	trace, ok := tr.Lookup("conc")
	if !ok {
		t.Fatal("trace conc not committed")
	}
	// 8 workers × 50 iterations × 2 spans + root = 801 > cap; retained
	// exactly the cap, rest counted as dropped.
	if got := len(trace.Spans) + trace.DroppedSpans; got != 8*50*2+1 {
		t.Errorf("spans+dropped = %d, want %d", got, 8*50*2+1)
	}
	if len(trace.Spans) != maxSpansPerTrace {
		t.Errorf("retained %d, want %d", len(trace.Spans), maxSpansPerTrace)
	}
}

func TestSanitizeID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc-DEF_123", "abc-DEF_123"},
		{"", ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
		{"has space", ""},
		{"has\nnewline", ""},
		{`quo"te`, ""},
		{"héllo", ""},
	}
	for _, tc := range cases {
		if got := SanitizeID(tc.in); got != tc.want {
			t.Errorf("SanitizeID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNewIDsUniqueAndSane(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 32 || SanitizeID(id) == "" {
			t.Fatalf("bad trace ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
	if id := NewRequestID(); len(id) != 16 || SanitizeID(id) == "" {
		t.Fatalf("bad request ID %q", id)
	}
}
