package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxSpansPerTrace bounds how many completed spans one trace retains, so
// a hostile or pathological request (a 1024-item batch fanning out over
// every stage) cannot grow a trace record without limit. Overflow is
// counted, not silently dropped.
const maxSpansPerTrace = 512

// spanKey is the context key for the active span. It is a zero-sized
// type on purpose: ctx.Value(spanKey{}) allocates nothing, which is what
// keeps StartSpan free on untraced contexts (the AllocsPerRun contract
// on the evaluation hot path).
type spanKey struct{}

// SpanRecord is one completed span as stored in the trace ring buffer
// and served by GET /debug/trace/{id}.
type SpanRecord struct {
	Name       string            `json:"name"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceRecord is one completed trace: every span that ended before the
// root did, in end order.
type TraceRecord struct {
	TraceID      string       `json:"trace_id"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// activeTrace is the mutable state of a trace in flight. Spans from
// parallel stages (batch fan-out, memoized fills) end concurrently, so
// every field is guarded by mu.
type activeTrace struct {
	traceID string
	tracer  *Tracer

	mu        sync.Mutex
	seq       uint64
	completed []SpanRecord
	dropped   int
}

func (at *activeTrace) nextSpanID() string {
	at.mu.Lock()
	at.seq++
	id := at.seq
	at.mu.Unlock()
	return fmt.Sprintf("%04x", id)
}

// Span is one timed stage of a trace. The nil *Span is a valid receiver
// for every method and does nothing, so instrumented code never branches
// on whether tracing is enabled.
type Span struct {
	at       *activeTrace
	name     string
	spanID   string
	parentID string
	start    time.Time
	root     bool

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// TraceID returns the ID of the trace this span belongs to, or "" for a
// nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.at.traceID
}

// Name returns the span's stage name, or "" for a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr attaches a key=value attribute to the span. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End completes the span, records it into its trace, and feeds its
// duration into the per-stage histogram if the tracer has one. Ending
// the root span commits the whole trace to the ring buffer. End is
// idempotent and a no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	elapsed := time.Since(s.start)
	rec := SpanRecord{
		Name:       s.name,
		SpanID:     s.spanID,
		ParentID:   s.parentID,
		Start:      s.start,
		DurationMS: float64(elapsed) / float64(time.Millisecond),
		Attrs:      attrs,
	}

	at := s.at
	at.mu.Lock()
	if len(at.completed) < maxSpansPerTrace {
		at.completed = append(at.completed, rec)
	} else {
		at.dropped++
	}
	at.mu.Unlock()

	if t := at.tracer; t != nil {
		if t.spanSeconds != nil {
			t.spanSeconds.With(s.name).Observe(elapsed.Seconds())
		}
		if s.root {
			at.mu.Lock()
			trace := &TraceRecord{TraceID: at.traceID, DroppedSpans: at.dropped, Spans: at.completed}
			at.mu.Unlock()
			t.commit(trace)
		}
	}
}

// StartSpan opens a child span of the active span on ctx, returning a
// derived context carrying the child. When no trace is active — the
// common case on every untraced request and on every library call made
// outside a request — it returns (ctx, nil) without allocating, and all
// methods on the nil span are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{
		at:       parent.at,
		name:     name,
		spanID:   parent.at.nextSpanID(),
		parentID: parent.spanID,
		start:    time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFromContext returns the active span on ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Tracer owns a bounded FIFO ring of completed traces, keyed by trace
// ID, and optionally feeds span durations into a per-stage histogram.
type Tracer struct {
	capacity    int
	spanSeconds *HistogramVec

	mu    sync.Mutex
	byID  map[string]*TraceRecord
	order []string
}

// NewTracer returns a tracer retaining up to capacity completed traces.
// spanSeconds may be nil; when set, every span's duration is observed
// into it labelled by stage name.
func NewTracer(capacity int, spanSeconds *HistogramVec) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity, spanSeconds: spanSeconds, byID: map[string]*TraceRecord{}}
}

// StartRoot opens the root span of a new trace. An empty traceID gets a
// fresh random one; callers propagating an external ID must sanitize it
// first (SanitizeID).
func (t *Tracer) StartRoot(ctx context.Context, traceID, name string) (context.Context, *Span) {
	if traceID == "" {
		traceID = NewTraceID()
	}
	at := &activeTrace{traceID: traceID, tracer: t}
	sp := &Span{
		at:     at,
		name:   name,
		spanID: at.nextSpanID(),
		start:  time.Now(),
		root:   true,
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// commit stores a completed trace, evicting the oldest when full.
func (t *Tracer) commit(trace *TraceRecord) {
	t.mu.Lock()
	if _, exists := t.byID[trace.TraceID]; !exists {
		t.order = append(t.order, trace.TraceID)
		for len(t.order) > t.capacity {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.byID, oldest)
		}
	}
	t.byID[trace.TraceID] = trace
	t.mu.Unlock()
}

// Lookup returns the completed trace with the given ID, if still in the
// ring.
func (t *Tracer) Lookup(traceID string) (*TraceRecord, bool) {
	t.mu.Lock()
	trace, ok := t.byID[traceID]
	t.mu.Unlock()
	return trace, ok
}

// Len returns how many completed traces the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// SpanTree is a span with its children attached, for JSON rendering of
// /debug/trace responses.
type SpanTree struct {
	SpanRecord
	Children []*SpanTree `json:"children,omitempty"`
}

// Tree reassembles the flat span list into its parent/child structure.
// Roots (spans whose parent is absent) come first by start time, and
// every child list is ordered by start time.
func (tr *TraceRecord) Tree() []*SpanTree {
	nodes := make(map[string]*SpanTree, len(tr.Spans))
	for i := range tr.Spans {
		rec := tr.Spans[i]
		nodes[rec.SpanID] = &SpanTree{SpanRecord: rec}
	}
	var roots []*SpanTree
	for i := range tr.Spans {
		node := nodes[tr.Spans[i].SpanID]
		if parent, ok := nodes[node.ParentID]; ok && node.ParentID != "" {
			parent.Children = append(parent.Children, node)
		} else {
			roots = append(roots, node)
		}
	}
	sortTrees(roots)
	for _, n := range nodes {
		sortTrees(n.Children)
	}
	return roots
}

func sortTrees(ts []*SpanTree) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Start.Equal(ts[j].Start) {
			return ts[i].SpanID < ts[j].SpanID
		}
		return ts[i].Start.Before(ts[j].Start)
	})
}

// Format renders the trace as an indented per-stage timing tree for the
// CLIs' -trace output.
func (tr *TraceRecord) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans", tr.TraceID, len(tr.Spans))
	if tr.DroppedSpans > 0 {
		fmt.Fprintf(&b, ", %d dropped", tr.DroppedSpans)
	}
	b.WriteString(")\n")
	var walk func(nodes []*SpanTree, depth int)
	walk = func(nodes []*SpanTree, depth int) {
		for _, n := range nodes {
			b.WriteString(strings.Repeat("  ", depth+1))
			b.WriteString(n.Name)
			if len(n.Attrs) > 0 {
				keys := make([]string, 0, len(n.Attrs))
				for k := range n.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
				}
			}
			fmt.Fprintf(&b, "  %.3fms\n", n.DurationMS)
			walk(n.Children, depth+1)
		}
	}
	walk(tr.Tree(), 0)
	return b.String()
}

// SanitizeID validates an externally supplied trace or request ID:
// 1–64 characters from [0-9A-Za-z_-]. Anything else returns "", which
// callers treat as "absent, generate one".
func SanitizeID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// NewTraceID returns a fresh random 128-bit hex trace ID.
func NewTraceID() string { return randHex(16) }

// NewRequestID returns a fresh random 64-bit hex request ID.
func NewRequestID() string { return randHex(8) }

func randHex(nbytes int) string {
	buf := make([]byte, nbytes)
	if _, err := rand.Read(buf); err != nil {
		// crypto/rand failing means the platform entropy source is gone;
		// IDs only need uniqueness within one process lifetime, so fall
		// back to a monotonic counter rather than taking the service down.
		return fmt.Sprintf("fallback-%016x", fallbackSeq.next())
	}
	return hex.EncodeToString(buf)
}

type seqCounter struct {
	mu sync.Mutex
	n  uint64
}

func (s *seqCounter) next() uint64 {
	s.mu.Lock()
	s.n++
	n := s.n
	s.mu.Unlock()
	return n
}

var fallbackSeq seqCounter
