package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxSpansPerTrace bounds how many completed spans one trace retains, so
// a hostile or pathological request (a 1024-item batch fanning out over
// every stage) cannot grow a trace record without limit. Overflow is
// counted, not silently dropped.
const maxSpansPerTrace = 512

// spanKey is the context key for the active span. It is a zero-sized
// type on purpose: ctx.Value(spanKey{}) allocates nothing, which is what
// keeps StartSpan free on untraced contexts (the AllocsPerRun contract
// on the evaluation hot path).
type spanKey struct{}

// SpanRecord is one completed span as stored in the trace ring buffer
// and served by GET /debug/trace/{id}.
type SpanRecord struct {
	Name       string            `json:"name"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceRecord is one completed trace: every span that ended before the
// root did, in end order.
type TraceRecord struct {
	TraceID      string       `json:"trace_id"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// activeTrace is the mutable state of a trace in flight. Spans from
// parallel stages (batch fan-out, memoized fills) end concurrently, so
// every field is guarded by mu.
type activeTrace struct {
	traceID string
	// spanPrefix makes span IDs unique across processes sharing one trace
	// ID: every process (and every root started within one) mints its own
	// random prefix, so a federated merge of two replicas' span sets never
	// sees the same "0001" twice.
	spanPrefix string
	tracer     *Tracer

	mu        sync.Mutex
	seq       uint64
	completed []SpanRecord
	dropped   int
}

func (at *activeTrace) nextSpanID() string {
	at.mu.Lock()
	at.seq++
	id := at.seq
	at.mu.Unlock()
	return fmt.Sprintf("%s%04x", at.spanPrefix, id)
}

// Span is one timed stage of a trace. The nil *Span is a valid receiver
// for every method and does nothing, so instrumented code never branches
// on whether tracing is enabled.
type Span struct {
	at       *activeTrace
	name     string
	spanID   string
	parentID string
	start    time.Time
	root     bool

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// TraceID returns the ID of the trace this span belongs to, or "" for a
// nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.at.traceID
}

// Name returns the span's stage name, or "" for a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SpanID returns the span's ID, or "" for a nil span. Callers making
// outbound hops put this in X-Parent-Span-Id so the remote process can
// parent its root span under this one.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// SetAttr attaches a key=value attribute to the span. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End completes the span, records it into its trace, and feeds its
// duration into the per-stage histogram if the tracer has one. Ending
// the root span commits the whole trace to the ring buffer. End is
// idempotent and a no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	elapsed := time.Since(s.start)
	rec := SpanRecord{
		Name:       s.name,
		SpanID:     s.spanID,
		ParentID:   s.parentID,
		Start:      s.start,
		DurationMS: float64(elapsed) / float64(time.Millisecond),
		Attrs:      attrs,
	}

	at := s.at
	at.mu.Lock()
	if len(at.completed) < maxSpansPerTrace {
		at.completed = append(at.completed, rec)
	} else {
		at.dropped++
	}
	at.mu.Unlock()

	if t := at.tracer; t != nil {
		if t.spanSeconds != nil {
			t.spanSeconds.With(s.name).Observe(elapsed.Seconds())
		}
		if s.root {
			at.mu.Lock()
			trace := &TraceRecord{TraceID: at.traceID, DroppedSpans: at.dropped, Spans: at.completed}
			at.mu.Unlock()
			t.commit(trace)
		}
	}
}

// StartSpan opens a child span of the active span on ctx, returning a
// derived context carrying the child. When no trace is active — the
// common case on every untraced request and on every library call made
// outside a request — it returns (ctx, nil) without allocating, and all
// methods on the nil span are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{
		at:       parent.at,
		name:     name,
		spanID:   parent.at.nextSpanID(),
		parentID: parent.spanID,
		start:    time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFromContext returns the active span on ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Tracer owns a bounded FIFO ring of completed traces, keyed by trace
// ID, and optionally feeds span durations into a per-stage histogram.
type Tracer struct {
	capacity    int
	spanSeconds *HistogramVec

	mu           sync.Mutex
	byID         map[string]*TraceRecord
	order        []string
	spansDropped uint64
	evicted      uint64
}

// NewTracer returns a tracer retaining up to capacity completed traces.
// spanSeconds may be nil; when set, every span's duration is observed
// into it labelled by stage name.
func NewTracer(capacity int, spanSeconds *HistogramVec) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity, spanSeconds: spanSeconds, byID: map[string]*TraceRecord{}}
}

// StartRoot opens the root span of a new trace. An empty traceID gets a
// fresh random one; callers propagating an external ID must sanitize it
// first (SanitizeID).
func (t *Tracer) StartRoot(ctx context.Context, traceID, name string) (context.Context, *Span) {
	return t.StartRootWithParent(ctx, traceID, "", name)
}

// StartRootWithParent opens the root span of a trace whose parent lives
// in another process: parentID is the caller's X-Parent-Span-Id, so the
// federated tree can attach this process's subtree under the remote
// span. An empty parentID makes a plain root; an empty traceID gets a
// fresh random one. Both IDs must already be sanitized (SanitizeID).
func (t *Tracer) StartRootWithParent(ctx context.Context, traceID, parentID, name string) (context.Context, *Span) {
	if traceID == "" {
		traceID = NewTraceID()
	}
	at := &activeTrace{traceID: traceID, spanPrefix: randHex(3), tracer: t}
	sp := &Span{
		at:       at,
		name:     name,
		spanID:   at.nextSpanID(),
		parentID: parentID,
		start:    time.Now(),
		root:     true,
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// commit stores a completed trace, evicting the oldest when full. A
// commit under an ID already in the ring merges into the stored record
// rather than overwriting it: background job work (worker lease cycles,
// coordinator merges) commits many times under one deterministic trace
// ID, and each commit must accumulate. The merged record stays capped at
// maxSpansPerTrace, with overflow counted as dropped.
func (t *Tracer) commit(trace *TraceRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spansDropped += uint64(trace.DroppedSpans)
	prev, exists := t.byID[trace.TraceID]
	if !exists {
		t.order = append(t.order, trace.TraceID)
		for len(t.order) > t.capacity {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.byID, oldest)
			t.evicted++
		}
		t.byID[trace.TraceID] = trace
		return
	}
	merged := &TraceRecord{
		TraceID:      trace.TraceID,
		DroppedSpans: prev.DroppedSpans + trace.DroppedSpans,
		Spans:        append(append([]SpanRecord{}, prev.Spans...), trace.Spans...),
	}
	if overflow := len(merged.Spans) - maxSpansPerTrace; overflow > 0 {
		merged.Spans = merged.Spans[:maxSpansPerTrace]
		merged.DroppedSpans += overflow
		t.spansDropped += uint64(overflow)
	}
	t.byID[trace.TraceID] = merged
}

// SpansDropped returns the cumulative count of spans dropped by
// per-trace caps across every trace this tracer has committed.
func (t *Tracer) SpansDropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spansDropped
}

// TracesEvicted returns how many completed traces the ring has evicted
// to stay within capacity.
func (t *Tracer) TracesEvicted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// RegisterMetrics exports the tracer's loss counters on reg as
// obs_trace_spans_dropped_total and obs_traces_evicted_total, so silent
// span loss is visible on /metrics.
func (t *Tracer) RegisterMetrics(reg *Registry) {
	reg.RegisterRaw([]string{"obs_trace_spans_dropped_total", "obs_traces_evicted_total"}, func(w io.Writer) {
		fmt.Fprintf(w, "# HELP obs_trace_spans_dropped_total Spans dropped by per-trace span caps.\n")
		fmt.Fprintf(w, "# TYPE obs_trace_spans_dropped_total counter\n")
		fmt.Fprintf(w, "obs_trace_spans_dropped_total %d\n", t.SpansDropped())
		fmt.Fprintf(w, "# HELP obs_traces_evicted_total Completed traces evicted from the trace ring.\n")
		fmt.Fprintf(w, "# TYPE obs_traces_evicted_total counter\n")
		fmt.Fprintf(w, "obs_traces_evicted_total %d\n", t.TracesEvicted())
	})
}

// Lookup returns the completed trace with the given ID, if still in the
// ring.
func (t *Tracer) Lookup(traceID string) (*TraceRecord, bool) {
	t.mu.Lock()
	trace, ok := t.byID[traceID]
	t.mu.Unlock()
	return trace, ok
}

// Len returns how many completed traces the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// SpanTree is a span with its children attached, for JSON rendering of
// /debug/trace responses.
type SpanTree struct {
	SpanRecord
	Children []*SpanTree `json:"children,omitempty"`
}

// Tree reassembles the flat span list into its parent/child structure.
// Roots (spans whose parent is absent) come first by start time, and
// every child list is ordered by start time.
func (tr *TraceRecord) Tree() []*SpanTree {
	return BuildTree(tr.Spans)
}

// BuildTree assembles a flat span set — possibly merged from several
// processes — into its parent/child structure. Spans whose parent ID is
// empty or absent from the set become roots; this is what lets a
// replica's subtree (root parented under a front span by
// X-Parent-Span-Id) attach correctly once both processes' spans are in
// one list, and degrade to a sibling root when the front's spans are
// missing.
func BuildTree(spans []SpanRecord) []*SpanTree {
	nodes := make(map[string]*SpanTree, len(spans))
	for i := range spans {
		rec := spans[i]
		nodes[rec.SpanID] = &SpanTree{SpanRecord: rec}
	}
	var roots []*SpanTree
	placed := make(map[string]bool, len(spans))
	for i := range spans {
		id := spans[i].SpanID
		if placed[id] {
			continue // duplicate span id (e.g. a replica scraped twice)
		}
		placed[id] = true
		node := nodes[id]
		if parent, ok := nodes[node.ParentID]; ok && node.ParentID != "" && parent != node {
			parent.Children = append(parent.Children, node)
		} else {
			roots = append(roots, node)
		}
	}
	sortTrees(roots)
	for _, n := range nodes {
		sortTrees(n.Children)
	}
	return roots
}

// FlattenTrees is the inverse of BuildTree: it returns every span in the
// forest as a flat list, parent IDs intact. Trace federation uses it to
// pool span sets fetched from several replicas before rebuilding one
// cross-process tree.
func FlattenTrees(trees []*SpanTree) []SpanRecord {
	var out []SpanRecord
	var walk func(n *SpanTree)
	walk = func(n *SpanTree) {
		out = append(out, n.SpanRecord)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range trees {
		walk(n)
	}
	return out
}

func sortTrees(ts []*SpanTree) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Start.Equal(ts[j].Start) {
			return ts[i].SpanID < ts[j].SpanID
		}
		return ts[i].Start.Before(ts[j].Start)
	})
}

// Format renders the trace as an indented per-stage timing tree for the
// CLIs' -trace output.
func (tr *TraceRecord) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans", tr.TraceID, len(tr.Spans))
	if tr.DroppedSpans > 0 {
		fmt.Fprintf(&b, ", %d dropped", tr.DroppedSpans)
	}
	b.WriteString(")\n")
	var walk func(nodes []*SpanTree, depth int)
	walk = func(nodes []*SpanTree, depth int) {
		for _, n := range nodes {
			b.WriteString(strings.Repeat("  ", depth+1))
			b.WriteString(n.Name)
			if len(n.Attrs) > 0 {
				keys := make([]string, 0, len(n.Attrs))
				for k := range n.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
				}
			}
			fmt.Fprintf(&b, "  %.3fms\n", n.DurationMS)
			walk(n.Children, depth+1)
		}
	}
	walk(tr.Tree(), 0)
	return b.String()
}

// SanitizeID validates an externally supplied trace or request ID:
// 1–64 characters from [0-9A-Za-z_-]. Anything else returns "", which
// callers treat as "absent, generate one".
func SanitizeID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// NewTraceID returns a fresh random 128-bit hex trace ID.
func NewTraceID() string { return randHex(16) }

// NewRequestID returns a fresh random 64-bit hex request ID.
func NewRequestID() string { return randHex(8) }

func randHex(nbytes int) string {
	buf := make([]byte, nbytes)
	if _, err := rand.Read(buf); err != nil {
		// crypto/rand failing means the platform entropy source is gone;
		// IDs only need uniqueness within one process lifetime, so fall
		// back to a monotonic counter rather than taking the service down.
		return fmt.Sprintf("fallback-%016x", fallbackSeq.next())
	}
	return hex.EncodeToString(buf)
}

type seqCounter struct {
	mu sync.Mutex
	n  uint64
}

func (s *seqCounter) next() uint64 {
	s.mu.Lock()
	s.n++
	n := s.n
	s.mu.Unlock()
	return n
}

var fallbackSeq seqCounter
