// Package obs is the repository's unified observability layer: one
// telemetry registry, one tracing model and one logging configuration
// shared by the nanocostd service, the command-line tools and the
// simulation libraries underneath them.
//
// The package answers the question the ROADMAP's production-scale target
// keeps raising — "where did this request/run spend its time?" — with
// three cooperating pieces:
//
//   - Registry (registry.go): a dependency-free metrics registry rendering
//     the Prometheus text exposition format. Counters, gauges and
//     histograms (scalar and labelled-vector forms) registered here come
//     out as contiguous, conformantly escaped families; raw collectors let
//     packages that keep their own counters (memo caches, Go runtime)
//     surface them in the same scrape without re-plumbing.
//
//   - Tracer/Span (trace.go): request-scoped tracing with
//     context-propagated trace and span IDs. Spans are opened with
//     StartSpan(ctx, stage) and cost nothing when no trace is active on
//     the context — a single allocation-free context lookup — so the hot
//     evaluation kernels can stay instrumented permanently. Completed
//     traces land in a bounded ring buffer for GET /debug/trace/{id} and
//     for the CLIs' -trace timing tree, and every span's duration feeds a
//     per-stage histogram on the registry.
//
//   - Flags / NewLogger (log.go): the shared -log-level/-log-format/-trace
//     command-line surface and the slog handler configuration behind it,
//     so every binary logs the same schema (structured key=value or JSON)
//     at the same levels.
//
// Layering: obs imports only the standard library. serve, memo, parallel,
// core and the cmds import obs — never the other way around — so the
// instrumentation cannot create dependency cycles with the model code it
// observes.
package obs
