package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DurationBuckets is the shared latency-histogram bucket layout, in
// seconds. It spans half a millisecond to ten seconds, matching the
// service's request-latency histogram so span-duration families are
// directly comparable with request latencies on the same scrape.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// labelEscaper implements the text exposition format's label-value
// escaping: exactly backslash, double quote and newline. Everything else
// (tabs, UTF-8) passes through raw.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Label renders one name="value" pair with conformant escaping.
func Label(name, value string) string {
	return name + `="` + labelEscaper.Replace(value) + `"`
}

// formatFloat renders a float64 the way the exposition format expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// collector is one registered family: it renders its complete block
// (HELP, TYPE, samples) contiguously.
type collector interface {
	write(w io.Writer)
}

// Registry is an ordered set of metric families rendered in the
// Prometheus text exposition format (version 0.0.4). It is
// instance-based — each Server owns one — so tests that build several
// servers never share counters. All methods are safe for concurrent use;
// registration of a duplicate family name panics, since two owners for
// one family is a programming error that would silently produce a
// non-contiguous (non-conformant) scrape.
type Registry struct {
	mu         sync.Mutex
	names      map[string]struct{}
	collectors []collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]struct{}{}}
}

// register claims the family names and appends the collector, preserving
// registration order in the scrape.
func (r *Registry) register(c collector, names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		if _, dup := r.names[name]; dup {
			panic(fmt.Sprintf("obs: duplicate metric family %q", name))
		}
		r.names[name] = struct{}{}
	}
	r.collectors = append(r.collectors, c)
}

// Render writes every registered family, in registration order, as one
// contiguous block per family.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	collectors := make([]collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	for _, c := range collectors {
		c.write(w)
	}
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers and returns a scalar counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c, name)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// ---------------------------------------------------------------------------
// CounterVec

// CounterVec is a counter family partitioned by one or more label
// dimensions. Children are created on first use and rendered in sorted
// label order so the scrape is deterministic.
type CounterVec struct {
	name, help string
	labels     []string

	mu       sync.Mutex
	children map[string]*Counter // key: joined escaped label pairs
}

// NewCounterVec registers and returns a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	v := &CounterVec{name: name, help: help, labels: labels, children: map[string]*Counter{}}
	r.register(v, name)
	return v
}

func (v *CounterVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	pairs := make([]string, len(values))
	for i, val := range values {
		pairs[i] = Label(v.labels[i], val)
	}
	return strings.Join(pairs, ",")
}

// With returns the child counter for the given label values, creating it
// on first use.
func (v *CounterVec) With(values ...string) *Counter {
	k := v.key(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[k]
	if !ok {
		c = &Counter{}
		v.children[k] = c
	}
	return c
}

// Value returns the child's count, zero if the label set was never used.
func (v *CounterVec) Value(values ...string) uint64 {
	k := v.key(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[k]; ok {
		return c.Value()
	}
	return 0
}

func (v *CounterVec) write(w io.Writer) {
	writeHeader(w, v.name, v.help, "counter")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, k, v.children[k].Value())
	}
	v.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a settable int64 metric.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers and returns a scalar gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g, name)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// ---------------------------------------------------------------------------
// GaugeVec

// GaugeVec is a gauge family partitioned by one or more label
// dimensions — per-replica health of a router's backend set, for
// example. Children are created on first use and rendered in sorted
// label order so the scrape is deterministic.
type GaugeVec struct {
	name, help string
	labels     []string

	mu       sync.Mutex
	children map[string]*Gauge // key: joined escaped label pairs
}

// NewGaugeVec registers and returns a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	v := &GaugeVec{name: name, help: help, labels: labels, children: map[string]*Gauge{}}
	r.register(v, name)
	return v
}

func (v *GaugeVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	pairs := make([]string, len(values))
	for i, val := range values {
		pairs[i] = Label(v.labels[i], val)
	}
	return strings.Join(pairs, ",")
}

// With returns the child gauge for the given label values, creating it
// on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	k := v.key(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[k]
	if !ok {
		g = &Gauge{}
		v.children[k] = g
	}
	return g
}

// Value returns the child's value, zero if the label set was never used.
func (v *GaugeVec) Value(values ...string) int64 {
	k := v.key(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[k]; ok {
		return g.Value()
	}
	return 0
}

func (v *GaugeVec) write(w io.Writer) {
	writeHeader(w, v.name, v.help, "gauge")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, k, v.children[k].Value())
	}
	v.mu.Unlock()
}

// FloatGauge is a settable float64 metric, for rate-style instruments
// (trials/sec of a running simulation job) where the producer pushes a
// computed value rather than the registry sampling one at scrape time.
// The value is stored as raw float64 bits in a single atomic word, so
// Set and Value are wait-free.
type FloatGauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewFloatGauge registers and returns a scalar float64 gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{name: name, help: help}
	r.register(g, name)
	return g
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FloatGauge) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
}

// gaugeFunc samples a float64 at scrape time.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFunc{name: name, help: help, fn: fn}, name)
}

func (g *gaugeFunc) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram accumulates observations into fixed buckets and renders them
// cumulatively (le="+Inf" always equals _count). The zero value is not
// usable; construct with NewHistogram. A Histogram may live outside any
// registry (package-level instruments in internal/parallel) and be
// attached to one or more registries for scraping.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []uint64 // per-bound, non-cumulative; cumulated at render time
	sum    float64
	count  uint64
}

// NewHistogram returns a standalone histogram with the given upper
// bounds, which must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	for i, bound := range h.bounds {
		if v <= bound {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean of all observations so far, or 0 when nothing has
// been observed. Adaptive consumers (the parallel chunk tuner) use it to
// seed their estimates from the same measurements the scrape exposes.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// snapshot returns cumulative bucket counts, sum and count.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	h.mu.Lock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	sum, count = h.sum, h.count
	h.mu.Unlock()
	return cum, sum, count
}

// writeSamples renders the histogram's sample lines under the given
// family name, with extraLabels (already escaped pairs, possibly empty)
// prefixed to each bucket's le label.
func (h *Histogram) writeSamples(w io.Writer, name, extraLabels string) {
	cum, sum, count := h.snapshot()
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	for i, bound := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{%s%s%s} %d\n", name, extraLabels, sep, Label("le", formatFloat(bound)), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%s%s} %d\n", name, extraLabels, sep, Label("le", "+Inf"), count)
	if extraLabels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum))
		fmt.Fprintf(w, "%s_count %d\n", name, count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, extraLabels, formatFloat(sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, extraLabels, count)
	}
}

// registeredHistogram binds a standalone Histogram to a family name.
type registeredHistogram struct {
	name, help string
	h          *Histogram
}

func (rh *registeredHistogram) write(w io.Writer) {
	writeHeader(w, rh.name, rh.help, "histogram")
	rh.h.writeSamples(w, rh.name, "")
}

// NewHistogramOn registers and returns a scalar histogram.
func (r *Registry) NewHistogramOn(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.AttachHistogram(name, help, h)
	return h
}

// AttachHistogram registers an existing standalone histogram under the
// given family name. Package-level instruments (e.g. the worker pool's
// chunk timings) are built once with NewHistogram and attached to each
// server's registry.
func (r *Registry) AttachHistogram(name, help string, h *Histogram) {
	r.register(&registeredHistogram{name: name, help: help, h: h}, name)
}

// ---------------------------------------------------------------------------
// HistogramVec

// HistogramVec is a histogram family partitioned by one or more label
// dimensions, e.g. span duration by stage. All children share one bucket
// layout and render contiguously under a single TYPE header.
type HistogramVec struct {
	name, help string
	labels     []string
	bounds     []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// NewHistogramVec registers and returns a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	v := &HistogramVec{name: name, help: help, labels: labels, bounds: bounds, children: map[string]*Histogram{}}
	r.register(v, name)
	return v
}

// With returns the child histogram for the given label values, creating
// it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	pairs := make([]string, len(values))
	for i, val := range values {
		pairs[i] = Label(v.labels[i], val)
	}
	k := strings.Join(pairs, ",")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[k]
	if !ok {
		h = NewHistogram(v.bounds)
		v.children[k] = h
	}
	return h
}

func (v *HistogramVec) write(w io.Writer) {
	writeHeader(w, v.name, v.help, "histogram")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		children[i].writeSamples(w, v.name, k)
	}
}

// ---------------------------------------------------------------------------
// Raw collectors

// rawCollector delegates rendering of one or more families to a
// function, for packages that keep their own counters (memo caches)
// or sample external state (Go runtime).
type rawCollector struct {
	fn func(io.Writer)
}

func (rc *rawCollector) write(w io.Writer) { rc.fn(w) }

// RegisterRaw registers a collector that renders the listed families
// itself, HELP/TYPE lines included. The names are claimed against
// duplicates; fn must emit each family contiguously.
func (r *Registry) RegisterRaw(names []string, fn func(io.Writer)) {
	r.register(&rawCollector{fn: fn}, names...)
}

// RegisterGoRuntime registers the Go runtime families: goroutine count,
// heap usage and garbage-collection totals, sampled at scrape time from
// a single runtime.ReadMemStats call.
func (r *Registry) RegisterGoRuntime() {
	r.RegisterRaw([]string{
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
		"go_memstats_heap_objects",
		"go_gc_cycles_total",
		"go_gc_pause_seconds_total",
	}, func(w io.Writer) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		writeHeader(w, "go_goroutines", "Number of goroutines that currently exist.", "gauge")
		fmt.Fprintf(w, "go_goroutines %d\n", runtime.NumGoroutine())
		writeHeader(w, "go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", "gauge")
		fmt.Fprintf(w, "go_memstats_heap_alloc_bytes %d\n", ms.HeapAlloc)
		writeHeader(w, "go_memstats_heap_objects", "Number of allocated heap objects.", "gauge")
		fmt.Fprintf(w, "go_memstats_heap_objects %d\n", ms.HeapObjects)
		writeHeader(w, "go_gc_cycles_total", "Completed garbage-collection cycles.", "counter")
		fmt.Fprintf(w, "go_gc_cycles_total %d\n", ms.NumGC)
		writeHeader(w, "go_gc_pause_seconds_total", "Cumulative stop-the-world pause time.", "counter")
		fmt.Fprintf(w, "go_gc_pause_seconds_total %s\n", formatFloat(float64(ms.PauseTotalNs)/1e9))
	})
}

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}
