package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in      string
		want    slog.Level
		wantErr bool
	}{
		{"debug", slog.LevelDebug, false},
		{"info", slog.LevelInfo, false},
		{"", slog.LevelInfo, false},
		{"WARN", slog.LevelWarn, false},
		{"warning", slog.LevelWarn, false},
		{" error ", slog.LevelError, false},
		{"verbose", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseLevel(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseLevel(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, slog.LevelInfo, "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("request", "route", "/v1/cost", "status", 200)
	if out := buf.String(); !strings.Contains(out, "route=/v1/cost") || !strings.Contains(out, "status=200") {
		t.Errorf("text handler output unexpected: %q", out)
	}

	buf.Reset()
	log, err = NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("request", "route", "/v1/cost", "status", 200)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler emitted invalid JSON %q: %v", buf.String(), err)
	}
	if rec["route"] != "/v1/cost" || rec["msg"] != "request" {
		t.Errorf("json record = %v", rec)
	}

	// Level filtering applies identically.
	buf.Reset()
	log, _ = NewLogger(&buf, slog.LevelWarn, "text")
	log.Info("dropped")
	if buf.Len() != 0 {
		t.Errorf("info line not filtered at warn level: %q", buf.String())
	}

	if _, err := NewLogger(io.Discard, slog.LevelInfo, "xml"); err == nil {
		t.Error("NewLogger accepted unknown format xml")
	}
}

func TestFlagsRegisterValidate(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.RegisterFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json", "-trace"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Level() != slog.LevelDebug || !f.Trace {
		t.Errorf("flags = %+v", f)
	}

	for _, args := range [][]string{
		{"-log-level", "loud"},
		{"-log-format", "yaml"},
	} {
		var bad Flags
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		bad.RegisterFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %v", args)
		}
	}
}

func TestFlagsTraceTree(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.RegisterFlags(fs)
	if err := fs.Parse([]string{"-trace"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx := f.StartRoot(context.Background(), "nanocost.run")
	_, sp := StartSpan(ctx, "core.montecarlo")
	sp.End()
	var buf bytes.Buffer
	f.Finish(&buf)
	out := buf.String()
	if !strings.Contains(out, "nanocost.run") || !strings.Contains(out, "core.montecarlo") {
		t.Errorf("-trace tree missing stages:\n%s", out)
	}

	// Without -trace, StartRoot must pass the context through untouched
	// and Finish must stay silent.
	var off Flags
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	off.RegisterFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	ctx2 := off.StartRoot(context.Background(), "run")
	if SpanFromContext(ctx2) != nil {
		t.Error("StartRoot without -trace attached a span")
	}
	buf.Reset()
	off.Finish(&buf)
	if buf.Len() != 0 {
		t.Errorf("Finish without -trace wrote %q", buf.String())
	}
}
