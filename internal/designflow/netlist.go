// Package designflow simulates the part of the design process the paper's
// §2.4 blames for runaway design cost: the loop of predict → implement →
// measure → iterate around timing closure. It provides a random netlist
// generator, a simulated-annealing placer with real half-perimeter
// wirelength, pre-placement wirelength/delay estimators with a controllable
// error (fed by the regularity→prediction model of internal/regularity),
// and a timing-closure iteration simulator whose iteration count — and
// hence design cost — is a measured function of prediction accuracy.
package designflow

import (
	"fmt"

	"repro/internal/stats"
)

// Net is a multi-pin connection between gates, identified by gate index.
type Net struct {
	Pins []int
}

// Netlist is a gate-level design: Gates cells connected by Nets. Depth is
// the logic depth used by the delay model.
type Netlist struct {
	Gates int
	Depth int
	Nets  []Net
}

// Validate reports the first structural problem with n, or nil.
func (n *Netlist) Validate() error {
	if n.Gates <= 0 {
		return fmt.Errorf("designflow: netlist must have gates, got %d", n.Gates)
	}
	if n.Depth <= 0 {
		return fmt.Errorf("designflow: netlist depth must be positive, got %d", n.Depth)
	}
	for i, net := range n.Nets {
		if len(net.Pins) < 2 {
			return fmt.Errorf("designflow: net %d has %d pins, need at least 2", i, len(net.Pins))
		}
		for _, p := range net.Pins {
			if p < 0 || p >= n.Gates {
				return fmt.Errorf("designflow: net %d references gate %d of %d", i, p, n.Gates)
			}
		}
	}
	return nil
}

// NetlistConfig parameterizes GenerateNetlist.
type NetlistConfig struct {
	Gates     int     // number of cells
	AvgFanout float64 // mean pins per net beyond the driver, >= 1
	Locality  float64 // in [0, 1): probability mass of short-range nets
	Seed      uint64
}

// Validate reports the first invalid field of c, or nil.
func (c NetlistConfig) Validate() error {
	if c.Gates < 2 {
		return fmt.Errorf("designflow: need at least 2 gates, got %d", c.Gates)
	}
	if c.AvgFanout < 1 {
		return fmt.Errorf("designflow: average fanout must be >= 1, got %v", c.AvgFanout)
	}
	if c.Locality < 0 || c.Locality >= 1 {
		return fmt.Errorf("designflow: locality must be in [0,1), got %v", c.Locality)
	}
	return nil
}

// GenerateNetlist builds a random netlist with Rent-style locality: each
// gate drives one net whose sinks are drawn either from a short-range
// neighbourhood (with probability Locality) or uniformly. Logic depth is
// set to ≈2·√gates, a typical pipelined-datapath figure.
func GenerateNetlist(c NetlistConfig) (*Netlist, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := stats.NewRNG(c.Seed)
	n := &Netlist{Gates: c.Gates}
	n.Depth = 2 * intSqrt(c.Gates)
	if n.Depth < 2 {
		n.Depth = 2
	}
	for g := 0; g < c.Gates; g++ {
		fan := 1 + r.Poisson(c.AvgFanout-1)
		pins := []int{g}
		seen := map[int]bool{g: true}
		for len(pins) < fan+1 {
			var sink int
			if r.Float64() < c.Locality {
				// Short-range: geometric index offset around the driver.
				off := 1 + int(r.Exp(0.25))
				if r.Float64() < 0.5 {
					off = -off
				}
				sink = g + off
				if sink < 0 || sink >= c.Gates {
					continue
				}
			} else {
				sink = r.Intn(c.Gates)
			}
			if seen[sink] {
				// Degenerate tiny netlists could starve; fall back to any
				// unseen gate by linear probe.
				continue
			}
			seen[sink] = true
			pins = append(pins, sink)
			if len(seen) == c.Gates {
				break
			}
		}
		if len(pins) >= 2 {
			n.Nets = append(n.Nets, Net{Pins: pins})
		}
	}
	return n, n.Validate()
}

// intSqrt returns ⌊√x⌋ for non-negative x.
func intSqrt(x int) int {
	if x < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}
