package designflow

import (
	"fmt"
	"math"
)

// CongestionMap is the result of a probabilistic global-routing estimate:
// per-edge track demand on the placement grid, from spreading each net's
// bounding box uniformly (the classic pre-route congestion model).
type CongestionMap struct {
	Cols, Rows int
	// H[y][x] is the demand crossing the vertical cut between columns x
	// and x+1 in row y; V[y][x] the demand crossing the horizontal cut
	// between rows y and y+1 in column x.
	H, V [][]float64
}

// EstimateCongestion spreads every net's wiring uniformly over its
// bounding box: a net spanning w×h cells contributes h/(h+1) demand...
// concretely, each horizontal cut inside the box receives 1/(h+1) of the
// net's horizontal crossings per row, matching the uniform-distribution
// convention of probabilistic routers.
func EstimateCongestion(n *Netlist, p *Placement) (*CongestionMap, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(n.Gates); err != nil {
		return nil, err
	}
	cm := &CongestionMap{Cols: p.Cols, Rows: p.Rows}
	cm.H = make([][]float64, p.Rows)
	cm.V = make([][]float64, p.Rows)
	for y := 0; y < p.Rows; y++ {
		cm.H[y] = make([]float64, p.Cols)
		cm.V[y] = make([]float64, p.Cols)
	}
	for _, net := range n.Nets {
		minX, maxX := p.X[net.Pins[0]], p.X[net.Pins[0]]
		minY, maxY := p.Y[net.Pins[0]], p.Y[net.Pins[0]]
		for _, g := range net.Pins[1:] {
			minX = min(minX, p.X[g])
			maxX = max(maxX, p.X[g])
			minY = min(minY, p.Y[g])
			maxY = max(maxY, p.Y[g])
		}
		w := maxX - minX // horizontal crossings needed per route
		h := maxY - minY
		if w > 0 {
			// One horizontal crossing of each vertical cut in [minX,maxX),
			// spread uniformly over the h+1 rows of the box.
			perRow := 1.0 / float64(h+1)
			for y := minY; y <= maxY; y++ {
				for x := minX; x < maxX; x++ {
					cm.H[y][x] += perRow
				}
			}
		}
		if h > 0 {
			perCol := 1.0 / float64(w+1)
			for x := minX; x <= maxX; x++ {
				for y := minY; y < maxY; y++ {
					cm.V[y][x] += perCol
				}
			}
		}
	}
	return cm, nil
}

// Peak returns the maximum horizontal and vertical edge demand.
func (cm *CongestionMap) Peak() (h, v float64) {
	for y := 0; y < cm.Rows; y++ {
		for x := 0; x < cm.Cols; x++ {
			h = math.Max(h, cm.H[y][x])
			v = math.Max(v, cm.V[y][x])
		}
	}
	return h, v
}

// Mean returns the average horizontal and vertical edge demand.
func (cm *CongestionMap) Mean() (h, v float64) {
	var nh, nv int
	for y := 0; y < cm.Rows; y++ {
		for x := 0; x < cm.Cols; x++ {
			h += cm.H[y][x]
			v += cm.V[y][x]
			nh++
			nv++
		}
	}
	return h / float64(nh), v / float64(nv)
}

// RoutabilityReport connects congestion to the paper's s_d: if the cell
// fabric offers TracksPerCell routing tracks across each cell, a design
// whose peak demand exceeds that supply must decompress — insert routing
// area — by the returned factor, directly inflating s_d.
type RoutabilityReport struct {
	PeakDemand    float64 // max of horizontal/vertical peaks
	TracksPerCell float64
	AreaInflation float64 // ≥ 1: multiply cell area by this to route
	SdWithRouting float64 // intrinsic s_d × inflation
	IntrinsicSd   float64
}

// Routability sizes the routing-driven decompression: given the netlist,
// its placement, the fabric's tracks per cell and the intrinsic cell
// s_d (λ² per transistor at 100% cell utilization), it reports the area
// inflation needed to satisfy peak demand. This quantifies §2.2.2's
// "growing need for more interconnect" component of the s_d trend —
// and its limit: the paper argues interconnect alone cannot explain the
// observed two-fold-plus increases.
func Routability(n *Netlist, p *Placement, tracksPerCell, intrinsicSd float64) (RoutabilityReport, error) {
	if tracksPerCell <= 0 {
		return RoutabilityReport{}, fmt.Errorf("designflow: tracks per cell must be positive, got %v", tracksPerCell)
	}
	if intrinsicSd <= 0 {
		return RoutabilityReport{}, fmt.Errorf("designflow: intrinsic s_d must be positive, got %v", intrinsicSd)
	}
	cm, err := EstimateCongestion(n, p)
	if err != nil {
		return RoutabilityReport{}, err
	}
	ph, pv := cm.Peak()
	peak := math.Max(ph, pv)
	rep := RoutabilityReport{
		PeakDemand:    peak,
		TracksPerCell: tracksPerCell,
		IntrinsicSd:   intrinsicSd,
		AreaInflation: 1,
	}
	if peak > tracksPerCell {
		// Routing area scales linearly with the track deficit: spreading
		// the fabric by f gives f·tracksPerCell supply.
		rep.AreaInflation = peak / tracksPerCell
	}
	rep.SdWithRouting = intrinsicSd * rep.AreaInflation
	return rep, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
