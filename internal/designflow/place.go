package designflow

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Placement assigns every gate a site on a Cols×Rows grid.
type Placement struct {
	Cols, Rows int
	X, Y       []int // per-gate coordinates
}

// Validate reports the first structural problem with p for a netlist of
// gates cells, or nil.
func (p *Placement) Validate(gates int) error {
	if p.Cols <= 0 || p.Rows <= 0 {
		return fmt.Errorf("designflow: placement grid must be positive, got %d×%d", p.Cols, p.Rows)
	}
	if len(p.X) != gates || len(p.Y) != gates {
		return fmt.Errorf("designflow: placement covers %d/%d gates", len(p.X), gates)
	}
	if p.Cols*p.Rows < gates {
		return fmt.Errorf("designflow: grid %d×%d cannot hold %d gates", p.Cols, p.Rows, gates)
	}
	for i := range p.X {
		if p.X[i] < 0 || p.X[i] >= p.Cols || p.Y[i] < 0 || p.Y[i] >= p.Rows {
			return fmt.Errorf("designflow: gate %d placed off grid", i)
		}
	}
	return nil
}

// InitialPlacement scatters the gates over the smallest near-square grid
// in netlist order with a deterministic shuffle, the annealer's starting
// point.
func InitialPlacement(n *Netlist, seed uint64) (*Placement, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	cols := intSqrt(n.Gates)
	if cols*cols < n.Gates {
		cols++
	}
	rows := (n.Gates + cols - 1) / cols
	p := &Placement{Cols: cols, Rows: rows, X: make([]int, n.Gates), Y: make([]int, n.Gates)}
	perm := stats.NewRNG(seed).Perm(n.Gates)
	for i, site := range perm {
		p.X[i] = site % cols
		p.Y[i] = site / cols
	}
	return p, nil
}

// HPWL returns the total half-perimeter wirelength of the placement in
// grid units.
func HPWL(n *Netlist, p *Placement) (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	if err := p.Validate(n.Gates); err != nil {
		return 0, err
	}
	var total float64
	for _, net := range n.Nets {
		total += netHPWL(net, p)
	}
	return total, nil
}

func netHPWL(net Net, p *Placement) float64 {
	minX, maxX := p.X[net.Pins[0]], p.X[net.Pins[0]]
	minY, maxY := p.Y[net.Pins[0]], p.Y[net.Pins[0]]
	for _, g := range net.Pins[1:] {
		if p.X[g] < minX {
			minX = p.X[g]
		}
		if p.X[g] > maxX {
			maxX = p.X[g]
		}
		if p.Y[g] < minY {
			minY = p.Y[g]
		}
		if p.Y[g] > maxY {
			maxY = p.Y[g]
		}
	}
	return float64(maxX - minX + maxY - minY)
}

// AnnealConfig parameterizes the placer.
type AnnealConfig struct {
	Moves       int     // total proposed swaps (default 200×gates)
	InitialTemp float64 // default: 10% of initial average net HPWL
	Cooling     float64 // geometric factor per temperature step, (0,1)
	Seed        uint64
}

// AnnealResult reports a placement run.
type AnnealResult struct {
	Initial float64 // HPWL before
	Final   float64 // HPWL after
	Moves   int
	Accepts int
}

// Anneal improves the placement in place by simulated annealing over gate
// swaps (and moves into free sites), the classic placement formulation.
// It recomputes only the nets incident to the swapped gates per move.
func Anneal(n *Netlist, p *Placement, cfg AnnealConfig) (AnnealResult, error) {
	if err := n.Validate(); err != nil {
		return AnnealResult{}, err
	}
	if err := p.Validate(n.Gates); err != nil {
		return AnnealResult{}, err
	}
	if cfg.Moves <= 0 {
		cfg.Moves = 200 * n.Gates
	}
	if cfg.Cooling == 0 {
		cfg.Cooling = 0.95
	}
	if !(cfg.Cooling > 0 && cfg.Cooling < 1) {
		return AnnealResult{}, fmt.Errorf("designflow: cooling factor must be in (0,1), got %v", cfg.Cooling)
	}

	// Incidence index: nets touching each gate.
	incident := make([][]int, n.Gates)
	for ni, net := range n.Nets {
		for _, g := range net.Pins {
			incident[g] = append(incident[g], ni)
		}
	}
	r := stats.NewRNG(cfg.Seed)
	initial, err := HPWL(n, p)
	if err != nil {
		return AnnealResult{}, err
	}
	temp := cfg.InitialTemp
	if temp <= 0 {
		temp = 0.1 * initial / float64(len(n.Nets)+1)
		if temp <= 0 {
			temp = 1
		}
	}
	res := AnnealResult{Initial: initial, Moves: cfg.Moves}
	cur := initial
	// Occupancy map for moves into free sites.
	occ := make([]int, p.Cols*p.Rows)
	for i := range occ {
		occ[i] = -1
	}
	for g := 0; g < n.Gates; g++ {
		occ[p.Y[g]*p.Cols+p.X[g]] = g
	}
	stepsPerTemp := cfg.Moves/50 + 1
	cost := func(g int) float64 {
		var s float64
		for _, ni := range incident[g] {
			s += netHPWL(n.Nets[ni], p)
		}
		return s
	}
	for m := 0; m < cfg.Moves; m++ {
		if m > 0 && m%stepsPerTemp == 0 {
			temp *= cfg.Cooling
		}
		a := r.Intn(n.Gates)
		// Target site: random; may hold another gate (swap) or be free.
		site := r.Intn(p.Cols * p.Rows)
		b := occ[site]
		if b == a {
			continue
		}
		var before, after float64
		ax, ay := p.X[a], p.Y[a]
		sx, sy := site%p.Cols, site/p.Cols
		if b >= 0 {
			before = cost(a) + cost(b)
			p.X[a], p.Y[a], p.X[b], p.Y[b] = sx, sy, ax, ay
			after = cost(a) + cost(b)
		} else {
			before = cost(a)
			p.X[a], p.Y[a] = sx, sy
			after = cost(a)
		}
		delta := after - before
		if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
			// Accept.
			res.Accepts++
			cur += delta
			occ[ay*p.Cols+ax] = b
			occ[site] = a
			if b >= 0 {
				// b moved to a's old site already via coordinates.
				_ = b
			}
		} else {
			// Revert.
			if b >= 0 {
				p.X[b], p.Y[b] = sx, sy
			}
			p.X[a], p.Y[a] = ax, ay
		}
	}
	// Recompute exactly to shed accumulated float error.
	final, err := HPWL(n, p)
	if err != nil {
		return AnnealResult{}, err
	}
	res.Final = final
	return res, nil
}
