package designflow

import (
	"testing"
	"testing/quick"
)

// Property: HPWL is invariant under relabeling-free placement copy and
// strictly positive for any connected netlist with spread-out gates.
func TestHPWLInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n, err := GenerateNetlist(NetlistConfig{Gates: 36, AvgFanout: 2, Locality: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		p, err := InitialPlacement(n, seed+1)
		if err != nil {
			return false
		}
		wl1, err := HPWL(n, p)
		if err != nil {
			return false
		}
		// Copy and recompute: identical.
		q := &Placement{Cols: p.Cols, Rows: p.Rows,
			X: append([]int(nil), p.X...), Y: append([]int(nil), p.Y...)}
		wl2, err := HPWL(n, q)
		if err != nil {
			return false
		}
		return wl1 == wl2 && wl1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: annealing never ends with a worse wirelength than it starts
// with (the final exact recompute is of the accepted state, and the
// accept rule only admits worsening moves transiently at T > 0 — the
// tracked current state is always ≤ initial when the move budget is
// spent cooling; verify the weaker but load-bearing invariant that the
// result is a valid permutation with non-negative HPWL).
func TestAnnealPreservesValidityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n, err := GenerateNetlist(NetlistConfig{Gates: 25, AvgFanout: 2, Locality: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		p, err := InitialPlacement(n, seed+2)
		if err != nil {
			return false
		}
		if _, err := Anneal(n, p, AnnealConfig{Moves: 2000, Seed: seed + 3}); err != nil {
			return false
		}
		if err := p.Validate(n.Gates); err != nil {
			return false
		}
		seen := map[[2]int]bool{}
		for i := range p.X {
			k := [2]int{p.X[i], p.Y[i]}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		wl, err := HPWL(n, p)
		return err == nil && wl >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: closure iteration counts are at least 1 and respect the
// MaxIterations bound for any sigma.
func TestClosureBoundsProperty(t *testing.T) {
	f := func(a uint16, seed uint64) bool {
		sigma := float64(a%200) / 100 // [0, 2)
		res, err := SimulateClosure(ClosureConfig{
			InitialOvershoot: 0.5,
			Sigma:            sigma,
			Tolerance:        0.02,
			ResidualFloor:    0.1,
			MaxIterations:    50,
			Seed:             seed,
		})
		if err != nil {
			return false
		}
		return res.Iterations >= 1 && res.Iterations <= 50 &&
			(res.Converged || res.FinalGap >= 0.02)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
