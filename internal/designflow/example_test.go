package designflow_test

import (
	"fmt"

	"repro/internal/designflow"
)

// The §2.4 mechanism: worse physical prediction → more timing-closure
// iterations → more design cost.
func ExampleMeanIterations() {
	base := designflow.ClosureConfig{
		InitialOvershoot: 0.5,
		Tolerance:        0.02,
		ResidualFloor:    0.1,
		Seed:             13,
	}
	for _, sigma := range []float64{0.05, 0.5, 0.9} {
		c := base
		c.Sigma = sigma
		mean, err := designflow.MeanIterations(c, 2000)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("σ = %.2f → %.1f iterations\n", sigma, mean)
	}
	// Output:
	// σ = 0.05 → 2.0 iterations
	// σ = 0.50 → 3.5 iterations
	// σ = 0.90 → 5.3 iterations
}

// Price a project from its measured iteration count.
func ExampleIterationCostModel_Cost() {
	m := designflow.DefaultIterationCostModel()
	cost, err := m.Cost(10e6, 12)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("12 iterations at 10M transistors: $%.0fM\n", cost/1e6)
	// Output:
	// 12 iterations at 10M transistors: $12M
}
