package designflow

import (
	"fmt"
	"math"
)

// IterationCostModel prices a design project from its iteration count:
//
//	C_DE = TeamCostPerIteration(N_tr) · iterations
//	TeamCostPerIteration = BasePerIteration · (N_tr / RefTransistors)^SizeExp
//
// Larger designs need larger teams and longer loops, so the per-iteration
// charge grows with design size. With SizeExp = 1 this is the same N_tr
// scaling eq (6) uses (p1 = 1): the two models agree on how cost scales
// with design size, while this one replaces the (s_d − s_d0) divergence
// with a *measured* iteration count.
type IterationCostModel struct {
	BasePerIteration float64 // $ per iteration at the reference size
	RefTransistors   float64
	SizeExp          float64
}

// DefaultIterationCostModel is calibrated so that a 10 M-transistor design
// needing ~17 iterations costs on the order of the eq (6) prediction at
// s_d = 300 (≈ $17 M): $1 M per iteration at 10 M transistors.
func DefaultIterationCostModel() IterationCostModel {
	return IterationCostModel{BasePerIteration: 1e6, RefTransistors: 10e6, SizeExp: 1.0}
}

// Validate reports the first invalid field of m, or nil.
func (m IterationCostModel) Validate() error {
	switch {
	case m.BasePerIteration <= 0:
		return fmt.Errorf("designflow: base per-iteration cost must be positive, got %v", m.BasePerIteration)
	case m.RefTransistors <= 0:
		return fmt.Errorf("designflow: reference size must be positive, got %v", m.RefTransistors)
	case m.SizeExp < 0:
		return fmt.Errorf("designflow: size exponent must be non-negative, got %v", m.SizeExp)
	}
	return nil
}

// Cost returns the design cost for a project of the given size and
// iteration count.
func (m IterationCostModel) Cost(transistors, iterations float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if transistors <= 0 {
		return 0, fmt.Errorf("designflow: transistor count must be positive, got %v", transistors)
	}
	if iterations <= 0 {
		return 0, fmt.Errorf("designflow: iteration count must be positive, got %v", iterations)
	}
	return m.BasePerIteration * math.Pow(transistors/m.RefTransistors, m.SizeExp) * iterations, nil
}

// RegularityDesignCost is the end-to-end §3.2 pipeline: a design style's
// regularity determines its prediction error (via the supplied error
// model's output sigma), the error determines the expected iteration
// count, and the iteration count prices the project.
func RegularityDesignCost(transistors, sigma float64, closure ClosureConfig, costModel IterationCostModel, runs int) (iterations, cost float64, err error) {
	closure.Sigma = sigma
	iterations, err = MeanIterations(closure, runs)
	if err != nil {
		return 0, 0, err
	}
	cost, err = costModel.Cost(transistors, iterations)
	if err != nil {
		return 0, 0, err
	}
	return iterations, cost, nil
}
