package designflow

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func testNetlist(t *testing.T, gates int, seed uint64) *Netlist {
	t.Helper()
	n, err := GenerateNetlist(NetlistConfig{Gates: gates, AvgFanout: 2.5, Locality: 0.6, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGenerateNetlistStructure(t *testing.T) {
	n := testNetlist(t, 200, 1)
	if n.Gates != 200 {
		t.Fatalf("gates = %d", n.Gates)
	}
	if n.Depth < 2 {
		t.Fatalf("depth = %d", n.Depth)
	}
	if len(n.Nets) < 150 {
		t.Fatalf("nets = %d, want ≈ gates", len(n.Nets))
	}
	var pins int
	for _, net := range n.Nets {
		if len(net.Pins) < 2 {
			t.Fatal("degenerate net")
		}
		pins += len(net.Pins)
	}
	avg := float64(pins)/float64(len(n.Nets)) - 1
	if math.Abs(avg-2.5) > 0.5 {
		t.Fatalf("average fanout = %v, want ≈2.5", avg)
	}
}

func TestGenerateNetlistDeterministic(t *testing.T) {
	a := testNetlist(t, 100, 9)
	b := testNetlist(t, 100, 9)
	if len(a.Nets) != len(b.Nets) {
		t.Fatal("same seed, different net counts")
	}
	for i := range a.Nets {
		if len(a.Nets[i].Pins) != len(b.Nets[i].Pins) {
			t.Fatal("same seed, different nets")
		}
		for j := range a.Nets[i].Pins {
			if a.Nets[i].Pins[j] != b.Nets[i].Pins[j] {
				t.Fatal("same seed, different pins")
			}
		}
	}
}

func TestNetlistConfigValidation(t *testing.T) {
	bad := []NetlistConfig{
		{Gates: 1, AvgFanout: 2, Locality: 0.5},
		{Gates: 10, AvgFanout: 0.5, Locality: 0.5},
		{Gates: 10, AvgFanout: 2, Locality: 1},
		{Gates: 10, AvgFanout: 2, Locality: -0.1},
	}
	for i, c := range bad {
		if _, err := GenerateNetlist(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLocalityShortensWires(t *testing.T) {
	// Local netlists should place to lower wirelength than global ones.
	mk := func(locality float64) float64 {
		n, err := GenerateNetlist(NetlistConfig{Gates: 144, AvgFanout: 2, Locality: locality, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		p, err := InitialPlacement(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Anneal(n, p, AnnealConfig{Moves: 40000, Seed: 5}); err != nil {
			t.Fatal(err)
		}
		wl, err := HPWL(n, p)
		if err != nil {
			t.Fatal(err)
		}
		return wl / float64(len(n.Nets))
	}
	local := mk(0.9)
	global := mk(0.0)
	if local >= global {
		t.Fatalf("local avg net WL %v not below global %v", local, global)
	}
}

func TestInitialPlacementValid(t *testing.T) {
	n := testNetlist(t, 77, 2)
	p, err := InitialPlacement(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(n.Gates); err != nil {
		t.Fatal(err)
	}
	// All sites distinct.
	seen := map[[2]int]bool{}
	for i := range p.X {
		k := [2]int{p.X[i], p.Y[i]}
		if seen[k] {
			t.Fatal("two gates share a site")
		}
		seen[k] = true
	}
}

func TestHPWLKnownValue(t *testing.T) {
	n := &Netlist{Gates: 3, Depth: 2, Nets: []Net{{Pins: []int{0, 1, 2}}}}
	p := &Placement{Cols: 4, Rows: 4, X: []int{0, 3, 1}, Y: []int{0, 2, 1}}
	wl, err := HPWL(n, p)
	if err != nil {
		t.Fatal(err)
	}
	if wl != 5 { // (3-0) + (2-0)
		t.Fatalf("HPWL = %v, want 5", wl)
	}
}

func TestAnnealImprovesWirelength(t *testing.T) {
	n := testNetlist(t, 196, 7)
	p, err := InitialPlacement(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anneal(n, p, AnnealConfig{Moves: 60000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final >= res.Initial {
		t.Fatalf("annealing did not improve: %v → %v", res.Initial, res.Final)
	}
	if res.Final > 0.8*res.Initial {
		t.Fatalf("annealing improved only %v → %v, want at least 20%%", res.Initial, res.Final)
	}
	if err := p.Validate(n.Gates); err != nil {
		t.Fatalf("anneal corrupted placement: %v", err)
	}
	if res.Accepts <= 0 || res.Accepts > res.Moves {
		t.Fatalf("accepts = %d of %d", res.Accepts, res.Moves)
	}
	// Occupancy still injective.
	seen := map[[2]int]bool{}
	for i := range p.X {
		k := [2]int{p.X[i], p.Y[i]}
		if seen[k] {
			t.Fatal("anneal placed two gates on one site")
		}
		seen[k] = true
	}
}

func TestAnnealValidation(t *testing.T) {
	n := testNetlist(t, 20, 1)
	p, err := InitialPlacement(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Anneal(n, p, AnnealConfig{Cooling: 1.5}); err == nil {
		t.Fatal("accepted cooling > 1")
	}
}

func TestDelayModel(t *testing.T) {
	n := &Netlist{Gates: 4, Depth: 10, Nets: []Net{{Pins: []int{0, 1}}, {Pins: []int{2, 3}}}}
	m := DelayModel{GateDelay: 1, WireDelayPerUnit: 0.5}
	d, err := m.Delay(n, 20) // avg net WL 10
	if err != nil {
		t.Fatal(err)
	}
	if d != 10*(1+0.5*10) {
		t.Fatalf("delay = %v, want 60", d)
	}
	if _, err := m.Delay(n, -1); err == nil {
		t.Fatal("accepted negative wirelength")
	}
	if _, err := (DelayModel{GateDelay: 0}).Delay(n, 1); err == nil {
		t.Fatal("accepted zero gate delay")
	}
}

func TestEstimateWirelengthInRegime(t *testing.T) {
	study, err := RunEstimationStudy(NetlistConfig{Gates: 196, AvgFanout: 2, Locality: 0.5, Seed: 10}, 60000)
	if err != nil {
		t.Fatal(err)
	}
	// The pre-layout estimator should land within 3x either way — it's a
	// regime estimator, not an oracle (that's the paper's whole point).
	if study.Ratio < 1.0/3 || study.Ratio > 3 {
		t.Fatalf("estimate/actual = %v, want within 3x (est %v, actual %v)", study.Ratio, study.Estimated, study.Actual)
	}
}

func TestNoisyEstimate(t *testing.T) {
	r := stats.NewRNG(11)
	// Zero sigma: exact.
	e, err := NoisyEstimate(100, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if e != 100 {
		t.Fatalf("zero-sigma estimate = %v", e)
	}
	// Spread grows with sigma.
	var spread float64
	for i := 0; i < 1000; i++ {
		e, err := NoisyEstimate(100, 0.3, r)
		if err != nil {
			t.Fatal(err)
		}
		if e < 0 {
			t.Fatal("negative estimate")
		}
		spread += math.Abs(e - 100)
	}
	if spread/1000 < 10 {
		t.Fatalf("sigma=0.3 mean abs deviation = %v, want ≈24", spread/1000)
	}
	if _, err := NoisyEstimate(-1, 0.1, r); err == nil {
		t.Fatal("accepted negative actual")
	}
	if _, err := NoisyEstimate(1, -0.1, r); err == nil {
		t.Fatal("accepted negative sigma")
	}
	if _, err := NoisyEstimate(1, 0.1, nil); err == nil {
		t.Fatal("accepted nil RNG")
	}
}

func defaultClosure() ClosureConfig {
	return ClosureConfig{
		InitialOvershoot: 0.5,
		Tolerance:        0.02,
		ResidualFloor:    0.1,
		Seed:             13,
	}
}

func TestSimulateClosureConvergesFastWithPerfectPrediction(t *testing.T) {
	c := defaultClosure()
	c.Sigma = 0
	res, err := SimulateClosure(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("perfect prediction did not converge")
	}
	if res.Iterations > 3 {
		t.Fatalf("perfect prediction took %d iterations", res.Iterations)
	}
}

func TestIterationsGrowWithSigma(t *testing.T) {
	c := defaultClosure()
	prev := 0.0
	for _, sigma := range []float64{0, 0.2, 0.5, 0.9} {
		c.Sigma = sigma
		mean, err := MeanIterations(c, 400)
		if err != nil {
			t.Fatal(err)
		}
		if mean <= prev {
			t.Fatalf("mean iterations %v at σ=%v not above %v", mean, sigma, prev)
		}
		prev = mean
	}
}

func TestClosureValidation(t *testing.T) {
	bad := []ClosureConfig{
		{InitialOvershoot: 0, Tolerance: 0.01, ResidualFloor: 0.1},
		{InitialOvershoot: 0.5, Sigma: -1, Tolerance: 0.01, ResidualFloor: 0.1},
		{InitialOvershoot: 0.5, Tolerance: 0, ResidualFloor: 0.1},
		{InitialOvershoot: 0.5, Tolerance: 0.6, ResidualFloor: 0.1},
		{InitialOvershoot: 0.5, Tolerance: 0.01, ResidualFloor: 1},
	}
	for i, c := range bad {
		if _, err := SimulateClosure(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := MeanIterations(defaultClosure(), 0); err == nil {
		t.Fatal("accepted zero runs")
	}
}

func TestIterationCostModel(t *testing.T) {
	m := DefaultIterationCostModel()
	c, err := m.Cost(10e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1e7 {
		t.Fatalf("cost = %v, want 1e7", c)
	}
	// Linear in size at SizeExp = 1.
	c2, err := m.Cost(20e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2-2*c) > 1e-6 {
		t.Fatalf("size scaling wrong: %v vs %v", c2, c)
	}
	if _, err := m.Cost(0, 10); err == nil {
		t.Fatal("accepted zero transistors")
	}
	if _, err := m.Cost(1e6, 0); err == nil {
		t.Fatal("accepted zero iterations")
	}
	if _, err := (IterationCostModel{}).Cost(1e6, 1); err == nil {
		t.Fatal("accepted invalid model")
	}
}

func TestRegularityDesignCostMonotone(t *testing.T) {
	// The §3.2 chain end to end: less regular → bigger sigma → more
	// iterations → more dollars.
	closure := defaultClosure()
	model := DefaultIterationCostModel()
	itLo, costLo, err := RegularityDesignCost(10e6, 0.05, closure, model, 300)
	if err != nil {
		t.Fatal(err)
	}
	itHi, costHi, err := RegularityDesignCost(10e6, 0.8, closure, model, 300)
	if err != nil {
		t.Fatal(err)
	}
	if itHi <= itLo || costHi <= costLo {
		t.Fatalf("irregular design not more expensive: %v/%v iterations, $%v/$%v", itLo, itHi, costLo, costHi)
	}
}
