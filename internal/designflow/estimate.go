package designflow

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// DelayModel converts wirelength and logic depth into a path delay:
//
//	delay = Depth · (GateDelay + WireDelayPerUnit · avgNetWL)
//
// in arbitrary consistent time units. avgNetWL is total HPWL divided by
// net count — the per-stage interconnect the critical path sees.
type DelayModel struct {
	GateDelay        float64 // intrinsic delay per logic level
	WireDelayPerUnit float64 // delay per grid unit of average net wirelength
}

// DefaultDelayModel weights wire delay strongly, as appropriate for the
// deep-submicron regime the paper describes (interconnect dominates).
func DefaultDelayModel() DelayModel {
	return DelayModel{GateDelay: 1.0, WireDelayPerUnit: 0.4}
}

// Validate reports the first invalid field of m, or nil.
func (m DelayModel) Validate() error {
	if m.GateDelay <= 0 {
		return fmt.Errorf("designflow: gate delay must be positive, got %v", m.GateDelay)
	}
	if m.WireDelayPerUnit < 0 {
		return fmt.Errorf("designflow: wire delay must be non-negative, got %v", m.WireDelayPerUnit)
	}
	return nil
}

// Delay evaluates the model for a netlist with the given total HPWL.
func (m DelayModel) Delay(n *Netlist, totalHPWL float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := n.Validate(); err != nil {
		return 0, err
	}
	if totalHPWL < 0 {
		return 0, fmt.Errorf("designflow: wirelength must be non-negative, got %v", totalHPWL)
	}
	avg := totalHPWL / float64(len(n.Nets))
	return float64(n.Depth) * (m.GateDelay + m.WireDelayPerUnit*avg), nil
}

// EstimateWirelength predicts the total post-placement HPWL of a netlist
// before placement, using the standard pre-layout heuristic: each net's
// span is estimated as a fanout-dependent multiple of the average site
// pitch on a near-square die. This is the "predict interconnect delay
// before placement and routing" capability §2.4 identifies as the design
// cost lever.
func EstimateWirelength(n *Netlist) (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	side := math.Sqrt(float64(n.Gates))
	var total float64
	for _, net := range n.Nets {
		k := float64(len(net.Pins))
		// Expected HPWL of k uniform points on a unit square is ≈ (k−1)/(k+1)
		// per axis; scale by die side and a locality discount.
		total += side * 2 * (k - 1) / (k + 1) * 0.35
	}
	return total, nil
}

// NoisyEstimate wraps an exact post-placement measurement in the paper's
// prediction-error abstraction: it returns actual·(1+ε) with
// ε ~ N(0, sigma). The regularity package supplies sigma: regular designs
// reuse characterized patterns and predict with small sigma; irregular
// designs carry the full baseline error.
func NoisyEstimate(actual, sigma float64, r *stats.RNG) (float64, error) {
	if actual < 0 {
		return 0, fmt.Errorf("designflow: actual value must be non-negative, got %v", actual)
	}
	if sigma < 0 {
		return 0, fmt.Errorf("designflow: sigma must be non-negative, got %v", sigma)
	}
	if r == nil {
		return 0, fmt.Errorf("designflow: NoisyEstimate requires an RNG")
	}
	est := actual * (1 + r.Norm(0, sigma))
	if est < 0 {
		est = 0
	}
	return est, nil
}

// EstimationStudy places a real netlist and reports how the pre-layout
// estimator compares with measured HPWL: the bias (estimate/actual) and
// the actual value. Experiments use it to show the estimator is in the
// right regime before the closure loop builds on it.
type EstimationStudy struct {
	Estimated float64
	Actual    float64
	Ratio     float64
}

// RunEstimationStudy generates, estimates, places and measures one design.
func RunEstimationStudy(cfg NetlistConfig, moves int) (EstimationStudy, error) {
	n, err := GenerateNetlist(cfg)
	if err != nil {
		return EstimationStudy{}, err
	}
	est, err := EstimateWirelength(n)
	if err != nil {
		return EstimationStudy{}, err
	}
	p, err := InitialPlacement(n, cfg.Seed+1)
	if err != nil {
		return EstimationStudy{}, err
	}
	if _, err := Anneal(n, p, AnnealConfig{Moves: moves, Seed: cfg.Seed + 2}); err != nil {
		return EstimationStudy{}, err
	}
	actual, err := HPWL(n, p)
	if err != nil {
		return EstimationStudy{}, err
	}
	out := EstimationStudy{Estimated: est, Actual: actual}
	if actual > 0 {
		out.Ratio = est / actual
	}
	return out, nil
}
