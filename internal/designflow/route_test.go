package designflow

import (
	"math"
	"testing"
)

func TestEstimateCongestionSingleNet(t *testing.T) {
	// Two pins in the same row, three columns apart: every vertical cut
	// between them carries exactly 1 horizontal crossing; no vertical
	// demand anywhere.
	n := &Netlist{Gates: 2, Depth: 2, Nets: []Net{{Pins: []int{0, 1}}}}
	p := &Placement{Cols: 5, Rows: 2, X: []int{0, 3}, Y: []int{0, 0}}
	cm, err := EstimateCongestion(n, p)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 3; x++ {
		if math.Abs(cm.H[0][x]-1) > 1e-12 {
			t.Fatalf("H[0][%d] = %v, want 1", x, cm.H[0][x])
		}
	}
	if cm.H[0][3] != 0 || cm.H[1][0] != 0 {
		t.Fatal("demand outside the net's box")
	}
	ph, pv := cm.Peak()
	if ph != 1 || pv != 0 {
		t.Fatalf("peaks = %v, %v", ph, pv)
	}
}

func TestEstimateCongestionBoxSpread(t *testing.T) {
	// A 2-pin net on a diagonal of a 3×3 box spreads horizontal demand
	// over 3 rows: each H edge inside gets 1/3.
	n := &Netlist{Gates: 2, Depth: 2, Nets: []Net{{Pins: []int{0, 1}}}}
	p := &Placement{Cols: 4, Rows: 4, X: []int{0, 2}, Y: []int{0, 2}}
	cm, err := EstimateCongestion(n, p)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y <= 2; y++ {
		for x := 0; x < 2; x++ {
			if math.Abs(cm.H[y][x]-1.0/3) > 1e-12 {
				t.Fatalf("H[%d][%d] = %v, want 1/3", y, x, cm.H[y][x])
			}
		}
	}
	// Total horizontal crossings conserved: w=2 cuts × 1 crossing each.
	var sum float64
	for y := range cm.H {
		for x := range cm.H[y] {
			sum += cm.H[y][x]
		}
	}
	if math.Abs(sum-2) > 1e-12 {
		t.Fatalf("total H demand = %v, want 2", sum)
	}
}

func TestCongestionMeanPeakOrdering(t *testing.T) {
	n := testNetlist(t, 144, 3)
	p, err := InitialPlacement(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := EstimateCongestion(n, p)
	if err != nil {
		t.Fatal(err)
	}
	ph, pv := cm.Peak()
	mh, mv := cm.Mean()
	if ph < mh || pv < mv {
		t.Fatalf("peak (%v,%v) below mean (%v,%v)", ph, pv, mh, mv)
	}
	if ph <= 0 && pv <= 0 {
		t.Fatal("no demand at all")
	}
}

func TestPlacementReducesCongestion(t *testing.T) {
	n, err := GenerateNetlist(NetlistConfig{Gates: 144, AvgFanout: 2, Locality: 0.8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	p, err := InitialPlacement(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	before, err := EstimateCongestion(n, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Anneal(n, p, AnnealConfig{Moves: 50000, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	after, err := EstimateCongestion(n, p)
	if err != nil {
		t.Fatal(err)
	}
	bh, bv := before.Mean()
	ah, av := after.Mean()
	if ah+av >= bh+bv {
		t.Fatalf("annealing did not reduce mean congestion: %v vs %v", ah+av, bh+bv)
	}
}

func TestRoutability(t *testing.T) {
	n := testNetlist(t, 144, 9)
	p, err := InitialPlacement(n, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Generous supply: no inflation.
	rep, err := Routability(n, p, 1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AreaInflation != 1 || rep.SdWithRouting != 50 {
		t.Fatalf("generous supply inflated: %+v", rep)
	}
	// Starved supply: inflation kicks in and scales s_d.
	starved, err := Routability(n, p, 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if starved.AreaInflation <= 1 {
		t.Fatalf("starved supply not inflated: %+v", starved)
	}
	if math.Abs(starved.SdWithRouting-50*starved.AreaInflation) > 1e-9 {
		t.Fatalf("s_d not scaled by inflation: %+v", starved)
	}
	if starved.PeakDemand != rep.PeakDemand {
		t.Fatal("peak demand should not depend on supply")
	}
}

func TestRoutabilityValidation(t *testing.T) {
	n := testNetlist(t, 20, 1)
	p, err := InitialPlacement(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Routability(n, p, 0, 50); err == nil {
		t.Fatal("accepted zero track supply")
	}
	if _, err := Routability(n, p, 1, 0); err == nil {
		t.Fatal("accepted zero intrinsic s_d")
	}
}
