package designflow

import (
	"fmt"

	"repro/internal/stats"
)

// ClosureConfig parameterizes the timing-closure simulation. The model:
// the team targets delay Target; the first implementation lands at
// Target·(1+InitialOvershoot). Each iteration the team predicts where the
// violation comes from with relative error sigma (from the design style's
// regularity) and fixes what it can see: a prediction that is off by ε
// leaves a |ε| fraction of the addressed gap unfixed, floored by
// ResidualFloor (changes always help at least a little, never converge
// instantly). Closure is reached when the remaining violation falls under
// Tolerance. This realizes §2.4: the number of (expensive, possibly
// silicon-bound) iterations is driven by prediction accuracy.
type ClosureConfig struct {
	InitialOvershoot float64 // initial violation as a fraction of target, > 0
	Sigma            float64 // relative prediction error (≥ 0)
	Tolerance        float64 // closure threshold as a fraction of target, > 0
	ResidualFloor    float64 // minimum per-iteration residual fraction, [0, 1)
	MaxIterations    int     // safety bound (default 200)
	Seed             uint64
}

// Validate reports the first invalid field of c, or nil.
func (c ClosureConfig) Validate() error {
	switch {
	case c.InitialOvershoot <= 0:
		return fmt.Errorf("designflow: initial overshoot must be positive, got %v", c.InitialOvershoot)
	case c.Sigma < 0:
		return fmt.Errorf("designflow: sigma must be non-negative, got %v", c.Sigma)
	case c.Tolerance <= 0:
		return fmt.Errorf("designflow: tolerance must be positive, got %v", c.Tolerance)
	case c.Tolerance >= c.InitialOvershoot:
		return fmt.Errorf("designflow: tolerance %v must be below the initial overshoot %v", c.Tolerance, c.InitialOvershoot)
	case c.ResidualFloor < 0 || c.ResidualFloor >= 1:
		return fmt.Errorf("designflow: residual floor must be in [0,1), got %v", c.ResidualFloor)
	}
	return nil
}

// ClosureResult reports one timing-closure run.
type ClosureResult struct {
	Iterations int
	Converged  bool
	FinalGap   float64 // remaining violation fraction
}

// SimulateClosure runs one stochastic timing-closure trajectory.
func SimulateClosure(c ClosureConfig) (ClosureResult, error) {
	if err := c.Validate(); err != nil {
		return ClosureResult{}, err
	}
	maxIter := c.MaxIterations
	if maxIter <= 0 {
		maxIter = 200
	}
	r := stats.NewRNG(c.Seed)
	gap := c.InitialOvershoot
	for it := 1; it <= maxIter; it++ {
		eps := r.Norm(0, c.Sigma)
		residual := abs(eps)
		if residual < c.ResidualFloor {
			residual = c.ResidualFloor
		}
		if residual > 0.98 {
			residual = 0.98
		}
		gap *= residual
		if gap < c.Tolerance {
			return ClosureResult{Iterations: it, Converged: true, FinalGap: gap}, nil
		}
	}
	return ClosureResult{Iterations: maxIter, Converged: false, FinalGap: gap}, nil
}

// MeanIterations averages the iteration count of runs independent closure
// trajectories (different sub-seeds of Seed). Non-converged runs count at
// the iteration cap, biasing the mean upward — appropriately, since they
// represent designs that never close.
func MeanIterations(c ClosureConfig, runs int) (float64, error) {
	if runs <= 0 {
		return 0, fmt.Errorf("designflow: runs must be positive, got %d", runs)
	}
	var sum float64
	for i := 0; i < runs; i++ {
		cc := c
		cc.Seed = c.Seed + uint64(i)*2654435761
		res, err := SimulateClosure(cc)
		if err != nil {
			return 0, err
		}
		sum += float64(res.Iterations)
	}
	return sum / float64(runs), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
