// Package wafer models wafer geometry: how many die of a given size fit on
// a wafer of a given diameter (the N_ch of the paper's eq (1)), under edge
// exclusion and scribe-lane constraints. It provides both an exact
// grid-placement computation and the standard analytic approximations, so
// that cost studies can quantify the error the approximations introduce.
package wafer

import (
	"fmt"
	"math"
)

// Wafer describes a raw wafer and its usable region.
type Wafer struct {
	DiameterMM      float64 // physical diameter, mm (200, 300, ...)
	EdgeExclusionMM float64 // unusable annulus at the rim, mm
}

// Standard wafer sizes with the customary 3 mm edge exclusion.
var (
	Wafer150 = Wafer{DiameterMM: 150, EdgeExclusionMM: 3}
	Wafer200 = Wafer{DiameterMM: 200, EdgeExclusionMM: 3}
	Wafer300 = Wafer{DiameterMM: 300, EdgeExclusionMM: 3}
)

// Validate reports the first invalid field of w, or nil.
func (w Wafer) Validate() error {
	if w.DiameterMM <= 0 {
		return fmt.Errorf("wafer: diameter must be positive, got %v mm", w.DiameterMM)
	}
	if w.EdgeExclusionMM < 0 {
		return fmt.Errorf("wafer: edge exclusion must be non-negative, got %v mm", w.EdgeExclusionMM)
	}
	if 2*w.EdgeExclusionMM >= w.DiameterMM {
		return fmt.Errorf("wafer: edge exclusion %v mm leaves no usable area on %v mm wafer", w.EdgeExclusionMM, w.DiameterMM)
	}
	return nil
}

// UsableRadiusMM returns the radius of the region die may occupy.
func (w Wafer) UsableRadiusMM() float64 { return w.DiameterMM/2 - w.EdgeExclusionMM }

// AreaCM2 returns the full wafer area in cm².
func (w Wafer) AreaCM2() float64 {
	r := w.DiameterMM / 20 // mm → cm
	return math.Pi * r * r
}

// UsableAreaCM2 returns the area inside the edge exclusion in cm².
func (w Wafer) UsableAreaCM2() float64 {
	r := w.UsableRadiusMM() / 10
	return math.Pi * r * r
}

// Die describes a die outline plus the scribe (saw) lane that separates
// neighbouring die on the reticle grid.
type Die struct {
	WidthMM  float64
	HeightMM float64
	ScribeMM float64 // scribe lane width added on each grid pitch
}

// SquareDie returns a square die of the given area in cm² with the default
// 0.1 mm scribe lane, the common shortcut when only A_ch is known (as in
// the paper's data).
func SquareDie(areaCM2 float64) Die {
	side := math.Sqrt(areaCM2) * 10 // cm → mm
	return Die{WidthMM: side, HeightMM: side, ScribeMM: 0.1}
}

// Validate reports the first invalid field of d, or nil.
func (d Die) Validate() error {
	if d.WidthMM <= 0 || d.HeightMM <= 0 {
		return fmt.Errorf("wafer: die dimensions must be positive, got %v×%v mm", d.WidthMM, d.HeightMM)
	}
	if d.ScribeMM < 0 {
		return fmt.Errorf("wafer: scribe width must be non-negative, got %v mm", d.ScribeMM)
	}
	return nil
}

// AreaCM2 returns the die area (excluding scribe) in cm².
func (d Die) AreaCM2() float64 { return d.WidthMM * d.HeightMM / 100 }

// pitch returns the grid pitch (die + scribe) in mm for both axes.
func (d Die) pitch() (px, py float64) { return d.WidthMM + d.ScribeMM, d.HeightMM + d.ScribeMM }
