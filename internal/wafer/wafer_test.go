package wafer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWaferValidate(t *testing.T) {
	if err := Wafer200.Validate(); err != nil {
		t.Fatalf("standard 200mm wafer rejected: %v", err)
	}
	bad := []Wafer{
		{DiameterMM: 0},
		{DiameterMM: 200, EdgeExclusionMM: -1},
		{DiameterMM: 10, EdgeExclusionMM: 5},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: invalid wafer %+v accepted", i, w)
		}
	}
}

func TestWaferAreas(t *testing.T) {
	// 200 mm wafer: r = 10 cm → area = 100π ≈ 314.16 cm².
	if got := Wafer200.AreaCM2(); math.Abs(got-math.Pi*100) > 1e-9 {
		t.Fatalf("area = %v, want %v", got, math.Pi*100)
	}
	// Usable: r = 9.7 cm.
	want := math.Pi * 9.7 * 9.7
	if got := Wafer200.UsableAreaCM2(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("usable area = %v, want %v", got, want)
	}
}

func TestSquareDie(t *testing.T) {
	d := SquareDie(1.0) // 1 cm² → 10×10 mm
	if math.Abs(d.WidthMM-10) > 1e-12 || math.Abs(d.HeightMM-10) > 1e-12 {
		t.Fatalf("square die = %v×%v mm, want 10×10", d.WidthMM, d.HeightMM)
	}
	if math.Abs(d.AreaCM2()-1) > 1e-12 {
		t.Fatalf("area round trip = %v", d.AreaCM2())
	}
}

func TestDieValidate(t *testing.T) {
	bad := []Die{
		{WidthMM: 0, HeightMM: 10},
		{WidthMM: 10, HeightMM: -1},
		{WidthMM: 10, HeightMM: 10, ScribeMM: -0.1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid die %+v accepted", i, d)
		}
	}
}

func TestGrossDieKnownSmallCase(t *testing.T) {
	// A 100 mm usable-diameter wafer (r=50) with 20 mm square die, no
	// scribe: by direct enumeration a 4-wide cross pattern fits 12
	// (rows of 2/4/4/2 when the grid is face-centered... verify against a
	// brute-force fine phase sweep instead of a hand count).
	w := Wafer{DiameterMM: 106, EdgeExclusionMM: 3}
	d := Die{WidthMM: 20, HeightMM: 20}
	n, err := GrossDie(w, d)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force with a very fine phase sweep as ground truth.
	best := 0
	r := w.UsableRadiusMM()
	for ix := 0; ix < 64; ix++ {
		for iy := 0; iy < 64; iy++ {
			ox := float64(ix) / 64 * 20
			oy := float64(iy) / 64 * 20
			if c := countGrid(r, d, 20, 20, ox, oy); c > best {
				best = c
			}
		}
	}
	if n != best {
		t.Fatalf("GrossDie = %d, fine sweep says %d", n, best)
	}
	if n < 8 || n > 21 {
		t.Fatalf("GrossDie = %d outside sane bounds for 20mm die on 100mm usable", n)
	}
}

func TestGrossDieHugeDie(t *testing.T) {
	n, err := GrossDie(Wafer200, Die{WidthMM: 500, HeightMM: 500})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("500mm die on 200mm wafer = %d, want 0", n)
	}
}

func TestGrossDieScribeReducesCount(t *testing.T) {
	d0 := Die{WidthMM: 10, HeightMM: 10, ScribeMM: 0}
	d1 := Die{WidthMM: 10, HeightMM: 10, ScribeMM: 1}
	n0, err := GrossDie(Wafer200, d0)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := GrossDie(Wafer200, d1)
	if err != nil {
		t.Fatal(err)
	}
	if n1 >= n0 {
		t.Fatalf("scribe lane did not reduce count: %d vs %d", n1, n0)
	}
}

func TestGrossDie300Beats200(t *testing.T) {
	d := SquareDie(1.0)
	n200, err := GrossDie(Wafer200, d)
	if err != nil {
		t.Fatal(err)
	}
	n300, err := GrossDie(Wafer300, d)
	if err != nil {
		t.Fatal(err)
	}
	// 300 mm has 2.25x the area; edge effects make the gain bigger.
	if float64(n300) < 2.1*float64(n200) {
		t.Fatalf("300mm/200mm ratio = %v, want > 2.1 (n200=%d n300=%d)", float64(n300)/float64(n200), n200, n300)
	}
}

func TestApproximationsBracketExact(t *testing.T) {
	for _, areaCM2 := range []float64{0.25, 0.5, 1.0, 2.0, 4.0} {
		d := SquareDie(areaCM2)
		exact, err := GrossDie(Wafer200, d)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := GrossDieApprox(Wafer200, d, AreaRatio)
		if err != nil {
			t.Fatal(err)
		}
		corrected, err := GrossDieApprox(Wafer200, d, EdgeCorrected)
		if err != nil {
			t.Fatal(err)
		}
		dehoff, err := GrossDieApprox(Wafer200, d, DeHoff)
		if err != nil {
			t.Fatal(err)
		}
		if naive < exact {
			t.Errorf("area %v: naive %d below exact %d — the area ratio must overestimate", areaCM2, naive, exact)
		}
		// Edge-corrected and DeHoff should be within ~20%% of exact.
		for _, a := range []struct {
			name string
			n    int
		}{{"edge-corrected", corrected}, {"dehoff", dehoff}} {
			relErr := math.Abs(float64(a.n-exact)) / float64(exact)
			if relErr > 0.25 {
				t.Errorf("area %v: %s = %d vs exact %d (err %.0f%%)", areaCM2, a.name, a.n, exact, relErr*100)
			}
		}
	}
}

func TestGrossDieApproxUnknown(t *testing.T) {
	if _, err := GrossDieApprox(Wafer200, SquareDie(1), Approximation(99)); err == nil {
		t.Fatal("accepted unknown approximation")
	}
}

func TestApproximationString(t *testing.T) {
	for a, want := range map[Approximation]string{
		AreaRatio: "area-ratio", EdgeCorrected: "edge-corrected", DeHoff: "dehoff",
	} {
		if got := a.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(a), got, want)
		}
	}
}

func TestDiePerWafer(t *testing.T) {
	n, err := DiePerWafer(Wafer200, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// ~314 cm² full area, 1 cm² die: between 200 and 300 whole die fit.
	if n < 200 || n > 300 {
		t.Fatalf("1 cm² die on 200 mm wafer = %d, want 200–300", n)
	}
	if _, err := DiePerWafer(Wafer200, 0); err == nil {
		t.Fatal("accepted zero die area")
	}
}

func TestUtilizationBounds(t *testing.T) {
	u, err := Utilization(Wafer200, SquareDie(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if u <= 0.5 || u >= 1 {
		t.Fatalf("utilization = %v, want (0.5, 1)", u)
	}
}

// Property: gross die never exceeds usable-area / die-area, and shrinking
// the die never decreases the count.
func TestGrossDieBoundsProperty(t *testing.T) {
	f := func(a uint16) bool {
		areaCM2 := 0.2 + float64(a%400)/100 // [0.2, 4.2)
		d := SquareDie(areaCM2)
		n, err := GrossDie(Wafer200, d)
		if err != nil {
			return false
		}
		if float64(n)*d.AreaCM2() > Wafer200.UsableAreaCM2() {
			return false
		}
		smaller := SquareDie(areaCM2 / 2)
		n2, err := GrossDie(Wafer200, smaller)
		return err == nil && n2 >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
