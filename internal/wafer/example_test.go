package wafer_test

import (
	"fmt"

	"repro/internal/wafer"
)

// Exact gross die versus the naive area ratio.
func ExampleGrossDie() {
	d := wafer.SquareDie(1.0) // 1 cm² die
	exact, err := wafer.GrossDie(wafer.Wafer200, d)
	if err != nil {
		fmt.Println(err)
		return
	}
	naive, err := wafer.GrossDieApprox(wafer.Wafer200, d, wafer.AreaRatio)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("exact %d, area-ratio %d\n", exact, naive)
	// Output:
	// exact 256, area-ratio 289
}

// Multi-project-wafer sharing: the prototype escape hatch from eq (5).
func ExampleMPWConfig_CostPerProjectDie() {
	cfg := wafer.MPWConfig{
		Projects:    10,
		MaskSetCost: 1e6,
		WaferCost:   2000,
		Wafers:      20,
		DiePerWafer: 25,
		Yield:       0.8,
	}
	shared, err := cfg.CostPerProjectDie()
	if err != nil {
		fmt.Println(err)
		return
	}
	dedicated, err := cfg.DedicatedCostPerDie(250)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("shared $%.0f/die vs dedicated $%.0f/die\n", shared, dedicated)
	// Output:
	// shared $260/die vs dedicated $2510/die
}
