package wafer

import (
	"math"
	"testing"
)

func TestOptimizeAspectBeatsOrMatchesSquare(t *testing.T) {
	for _, area := range []float64{0.5, 1.0, 2.0} {
		st, err := OptimizeAspect(Wafer200, area, 2.5, 21)
		if err != nil {
			t.Fatal(err)
		}
		if st.BestCount < st.Square {
			t.Fatalf("area %v: best aspect %d below square %d", area, st.BestCount, st.Square)
		}
		if st.BestRatio < 1/2.5-1e-9 || st.BestRatio > 2.5+1e-9 {
			t.Fatalf("best ratio %v outside scan range", st.BestRatio)
		}
	}
}

func TestOptimizeAspectValidation(t *testing.T) {
	if _, err := OptimizeAspect(Wafer200, 0, 2, 5); err == nil {
		t.Fatal("accepted zero area")
	}
	if _, err := OptimizeAspect(Wafer200, 1, 0.5, 5); err == nil {
		t.Fatal("accepted max ratio < 1")
	}
	if _, err := OptimizeAspect(Wafer200, 1, 2, 0); err == nil {
		t.Fatal("accepted zero ratios")
	}
}

func mpwConfig() MPWConfig {
	return MPWConfig{
		Projects:    10,
		MaskSetCost: 1e6,
		WaferCost:   2000,
		Wafers:      20,
		DiePerWafer: 25, // per-project sites on the shared reticle
		Yield:       0.8,
	}
}

func TestMPWCostPerProjectDie(t *testing.T) {
	c := mpwConfig()
	got, err := c.CostPerProjectDie()
	if err != nil {
		t.Fatal(err)
	}
	// Share: (1e6 + 2000·20)/10 = 104000; good die: 20·25·0.8 = 400.
	want := 104000.0 / 400
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MPW die cost = %v, want %v", got, want)
	}
}

func TestMPWSharingHelpsPrototypes(t *testing.T) {
	c := mpwConfig()
	mpw, err := c.CostPerProjectDie()
	if err != nil {
		t.Fatal(err)
	}
	// Dedicated run of the same tiny lot: full mask set, 10x the sites.
	ded, err := c.DedicatedCostPerDie(250)
	if err != nil {
		t.Fatal(err)
	}
	if mpw >= ded {
		t.Fatalf("MPW %v not cheaper than dedicated %v at prototype volume", mpw, ded)
	}
}

func TestMPWBreakEven(t *testing.T) {
	c := mpwConfig()
	be, err := c.MPWBreakEvenWafers(250)
	if err != nil {
		t.Fatal(err)
	}
	if be <= 0 {
		t.Fatalf("break-even = %v wafers", be)
	}
	// More aggressive sharing makes the MPW cheaper per die, pushing the
	// dedicated break-even to larger volumes.
	shared := c
	shared.Projects = 20
	be20, err := shared.MPWBreakEvenWafers(250)
	if err != nil {
		t.Fatal(err)
	}
	if be20 <= be {
		t.Fatalf("20-way break-even %v not above 10-way %v", be20, be)
	}
	// At the break-even volume the dedicated run matches the MPW per-die
	// price.
	perDieMPW, err := c.CostPerProjectDie()
	if err != nil {
		t.Fatal(err)
	}
	dedicatedAtBE := (c.MaskSetCost + c.WaferCost*be) / (be * 250 * c.Yield)
	if math.Abs(dedicatedAtBE-perDieMPW)/perDieMPW > 1e-9 {
		t.Fatalf("at break-even: dedicated %v vs MPW %v", dedicatedAtBE, perDieMPW)
	}
}

func TestMPWBreakEvenUnreachable(t *testing.T) {
	c := mpwConfig()
	c.Projects = 1000 // absurdly cheap sharing
	if _, err := c.MPWBreakEvenWafers(26); err == nil {
		t.Fatal("accepted never-break-even configuration")
	}
}

func TestMPWValidation(t *testing.T) {
	bad := []MPWConfig{
		{Projects: 0, WaferCost: 1, Wafers: 1, DiePerWafer: 1, Yield: 0.5},
		{Projects: 1, MaskSetCost: -1, WaferCost: 1, Wafers: 1, DiePerWafer: 1, Yield: 0.5},
		{Projects: 1, WaferCost: 0, Wafers: 1, DiePerWafer: 1, Yield: 0.5},
		{Projects: 1, WaferCost: 1, Wafers: 0, DiePerWafer: 1, Yield: 0.5},
		{Projects: 1, WaferCost: 1, Wafers: 1, DiePerWafer: 0, Yield: 0.5},
		{Projects: 1, WaferCost: 1, Wafers: 1, DiePerWafer: 1, Yield: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	c := mpwConfig()
	if _, err := c.DedicatedCostPerDie(0); err == nil {
		t.Fatal("accepted zero dedicated sites")
	}
	if _, err := c.MPWBreakEvenWafers(25); err == nil {
		t.Fatal("accepted dedicated run no denser than MPW slot")
	}
}
