package wafer

import (
	"fmt"
	"math"
)

// GrossDie computes the exact number of whole die that fit in the usable
// circle by simulating the rectangular placement grid. The grid is swept
// over a range of phase offsets (the alignment of the grid relative to the
// wafer center is a free parameter steppers optimize) and the best count is
// returned. A die counts only if all four corners lie inside the usable
// radius.
func GrossDie(w Wafer, d Die) (int, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	r := w.UsableRadiusMM()
	px, py := d.pitch()
	if d.WidthMM > 2*r || d.HeightMM > 2*r {
		return 0, nil
	}
	best := 0
	// Sweep grid phases. A handful of phases per axis captures the
	// centered/offset optima; 8×8 is exhaustive enough that finer sweeps
	// change nothing for realistic die sizes (verified in tests).
	const phases = 8
	for ix := 0; ix < phases; ix++ {
		ox := float64(ix) / phases * px
		for iy := 0; iy < phases; iy++ {
			oy := float64(iy) / phases * py
			if n := countGrid(r, d, px, py, ox, oy); n > best {
				best = n
			}
		}
	}
	return best, nil
}

// countGrid counts whole die on a grid with the given pitch and phase.
func countGrid(r float64, d Die, px, py, ox, oy float64) int {
	// Candidate columns cover [-r, r].
	iMin := int(math.Floor((-r - ox) / px))
	iMax := int(math.Ceil((r - ox) / px))
	count := 0
	r2 := r * r
	inside := func(x, y float64) bool { return x*x+y*y <= r2 }
	for i := iMin; i <= iMax; i++ {
		x0 := ox + float64(i)*px
		x1 := x0 + d.WidthMM
		jMin := int(math.Floor((-r - oy) / py))
		jMax := int(math.Ceil((r - oy) / py))
		for j := jMin; j <= jMax; j++ {
			y0 := oy + float64(j)*py
			y1 := y0 + d.HeightMM
			if inside(x0, y0) && inside(x1, y0) && inside(x0, y1) && inside(x1, y1) {
				count++
			}
		}
	}
	return count
}

// Approximation identifies one of the standard analytic gross-die formulas.
type Approximation int

const (
	// AreaRatio is the naive πr²/A estimate ignoring edge loss.
	AreaRatio Approximation = iota
	// EdgeCorrected subtracts the circumference band: πr²/A − πd_w/√(2A).
	// This is the formula most cost-of-ownership models use.
	EdgeCorrected
	// DeHoff uses the π(r−√(A/π))²/A "shrunken radius" form.
	DeHoff
)

// String returns the formula name.
func (a Approximation) String() string {
	switch a {
	case AreaRatio:
		return "area-ratio"
	case EdgeCorrected:
		return "edge-corrected"
	case DeHoff:
		return "dehoff"
	default:
		return fmt.Sprintf("approximation(%d)", int(a))
	}
}

// GrossDieApprox evaluates the chosen analytic approximation. The die's
// scribe lane is folded into its effective area. Results are truncated
// toward zero and never negative.
func GrossDieApprox(w Wafer, d Die, a Approximation) (int, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	r := w.UsableRadiusMM()
	px, py := d.pitch()
	area := px * py // effective area incl. scribe, mm²
	var n float64
	switch a {
	case AreaRatio:
		n = math.Pi * r * r / area
	case EdgeCorrected:
		n = math.Pi*r*r/area - math.Pi*2*r/math.Sqrt(2*area)
	case DeHoff:
		side := math.Sqrt(area / math.Pi)
		eff := r - side
		if eff < 0 {
			eff = 0
		}
		n = math.Pi * eff * eff / area
	default:
		return 0, fmt.Errorf("wafer: unknown approximation %d", int(a))
	}
	if n < 0 {
		n = 0
	}
	return int(n), nil
}

// DiePerWafer is a convenience wrapper: exact gross die for a square die of
// the given area (cm²) on the given wafer, the call sites in the cost
// studies use.
func DiePerWafer(w Wafer, dieAreaCM2 float64) (int, error) {
	if dieAreaCM2 <= 0 {
		return 0, fmt.Errorf("wafer: die area must be positive, got %v cm²", dieAreaCM2)
	}
	return GrossDie(w, SquareDie(dieAreaCM2))
}

// Utilization returns the fraction of the usable wafer area covered by
// whole die (excluding scribe), a measure of placement efficiency.
func Utilization(w Wafer, d Die) (float64, error) {
	n, err := GrossDie(w, d)
	if err != nil {
		return 0, err
	}
	return float64(n) * d.AreaCM2() / w.UsableAreaCM2(), nil
}
