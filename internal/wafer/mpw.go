package wafer

import (
	"fmt"
	"math"
)

// AspectStudy finds the die aspect ratio that maximizes gross die for a
// fixed die area: tall-thin and short-wide rectangles waste different
// amounts of the wafer rim. It scans width/height ratios in
// [1/maxRatio, maxRatio] and returns the best.
type AspectStudy struct {
	BestRatio float64 // width/height of the winning rectangle
	BestCount int
	Square    int // gross die of the square die, for comparison
}

// OptimizeAspect scans nRatios aspect ratios for a die of areaCM2 on w.
// maxRatio bounds the scan (realistic die stay under ~2.5:1).
func OptimizeAspect(w Wafer, areaCM2, maxRatio float64, nRatios int) (AspectStudy, error) {
	if areaCM2 <= 0 {
		return AspectStudy{}, fmt.Errorf("wafer: die area must be positive, got %v", areaCM2)
	}
	if maxRatio < 1 {
		return AspectStudy{}, fmt.Errorf("wafer: max aspect ratio must be >= 1, got %v", maxRatio)
	}
	if nRatios < 1 {
		return AspectStudy{}, fmt.Errorf("wafer: need at least one ratio, got %d", nRatios)
	}
	var study AspectStudy
	sq, err := GrossDie(w, SquareDie(areaCM2))
	if err != nil {
		return AspectStudy{}, err
	}
	study.Square = sq
	study.BestCount = -1
	areaMM2 := areaCM2 * 100
	for i := 0; i < nRatios; i++ {
		// Log-spaced ratios in [1/maxRatio, maxRatio].
		t := 0.0
		if nRatios > 1 {
			t = float64(i) / float64(nRatios-1)
		}
		ratio := math.Exp((2*t - 1) * math.Log(maxRatio))
		width := math.Sqrt(areaMM2 * ratio)
		height := areaMM2 / width
		n, err := GrossDie(w, Die{WidthMM: width, HeightMM: height, ScribeMM: 0.1})
		if err != nil {
			return AspectStudy{}, err
		}
		if n > study.BestCount {
			study.BestCount = n
			study.BestRatio = ratio
		}
	}
	return study, nil
}

// MPWConfig describes a multi-project wafer run: several projects share
// one mask set and one wafer lot, the standard escape hatch from the
// eq (5) NRE squeeze for prototypes and very low volume.
type MPWConfig struct {
	Projects    int     // designs sharing the reticle
	MaskSetCost float64 // full mask-set price C_MA
	WaferCost   float64 // per processed wafer
	Wafers      int     // wafers in the shared lot
	DiePerWafer int     // die sites per wafer *per project*
	Yield       float64
}

// Validate reports the first invalid field of c, or nil.
func (c MPWConfig) Validate() error {
	switch {
	case c.Projects <= 0:
		return fmt.Errorf("wafer: MPW needs at least one project, got %d", c.Projects)
	case c.MaskSetCost < 0:
		return fmt.Errorf("wafer: mask cost must be non-negative, got %v", c.MaskSetCost)
	case c.WaferCost <= 0:
		return fmt.Errorf("wafer: wafer cost must be positive, got %v", c.WaferCost)
	case c.Wafers <= 0:
		return fmt.Errorf("wafer: wafer count must be positive, got %d", c.Wafers)
	case c.DiePerWafer <= 0:
		return fmt.Errorf("wafer: die per wafer must be positive, got %d", c.DiePerWafer)
	case !(c.Yield > 0 && c.Yield <= 1):
		return fmt.Errorf("wafer: yield must be in (0,1], got %v", c.Yield)
	}
	return nil
}

// CostPerProjectDie returns the all-in cost of one good die for one MPW
// participant: its 1/Projects share of the mask set and of the lot's
// wafer cost, divided by its good die.
func (c MPWConfig) CostPerProjectDie() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	share := (c.MaskSetCost + c.WaferCost*float64(c.Wafers)) / float64(c.Projects)
	goodDie := float64(c.Wafers) * float64(c.DiePerWafer) * c.Yield
	return share / goodDie, nil
}

// DedicatedCostPerDie returns the cost of one good die if the project ran
// its own dedicated mask set instead, sized to deliver the same number of
// good die its MPW slot yields. The dedicated run packs
// dedicatedDiePerWafer sites per wafer (a full reticle of the one design)
// but must buy the entire mask set alone — the eq (5) squeeze MPW exists
// to escape.
func (c MPWConfig) DedicatedCostPerDie(dedicatedDiePerWafer int) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if dedicatedDiePerWafer <= 0 {
		return 0, fmt.Errorf("wafer: dedicated die per wafer must be positive, got %d", dedicatedDiePerWafer)
	}
	goodNeeded := float64(c.Wafers) * float64(c.DiePerWafer) * c.Yield
	wafersNeeded := math.Ceil(goodNeeded / (float64(dedicatedDiePerWafer) * c.Yield))
	if wafersNeeded < 1 {
		wafersNeeded = 1
	}
	total := c.MaskSetCost + c.WaferCost*wafersNeeded
	return total / goodNeeded, nil
}

// MPWBreakEvenWafers returns the lot size at which a dedicated run
// (full reticle, dedicatedDiePerWafer sites) becomes cheaper per good die
// than the shared MPW run. Below it, prototypes should share masks.
func (c MPWConfig) MPWBreakEvenWafers(dedicatedDiePerWafer int) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if dedicatedDiePerWafer <= c.DiePerWafer {
		return 0, fmt.Errorf("wafer: dedicated run must fit more die per wafer than the MPW slot (%d vs %d)",
			dedicatedDiePerWafer, c.DiePerWafer)
	}
	// Cost equality in wafer count w:
	//   (M + C·w)/(P·w·d_mpw) = (M + C·w)/(w·d_ded) has no solution in w —
	// per-die costs share the (M + C·w) numerator only for the MPW's own
	// wafers. The dedicated run buys its own wafers, so equate
	//   (M/P + C·w_shared_share... )
	// Simpler and correct framing: the project needs G good die. MPW cost
	// for G die vs dedicated cost for G die; break-even in G:
	//   MPW:       (M/P)·0 + per-die_mpw·G   with per-die_mpw from a lot
	//   dedicated: M + C·(G/(d_ded·Y))
	// Equate dedicated with MPW per-die pricing:
	perDieMPW, err := c.CostPerProjectDie()
	if err != nil {
		return 0, err
	}
	perWaferGood := float64(dedicatedDiePerWafer) * c.Yield
	// M + C·w = perDieMPW · (w · perWaferGood) → w = M/(perDieMPW·perWaferGood − C)
	denom := perDieMPW*perWaferGood - c.WaferCost
	if denom <= 0 {
		return 0, fmt.Errorf("wafer: dedicated run never breaks even (MPW per-die %v too cheap)", perDieMPW)
	}
	return c.MaskSetCost / denom, nil
}
