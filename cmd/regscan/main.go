// Command regscan generates a layout in one of the built-in styles (or
// reads one from a text-interchange file), scans it for repetitive
// patterns, and reports the regularity metrics plus their design-cost
// implication via the §3.2 pipeline. With -out it also dumps the layout
// for other tools.
//
// Examples:
//
//	regscan -style asic -cells 600 -util 0.5 -pitch 60
//	regscan -style sram -out sram.lay
//	regscan -in sram.lay -pitch 60
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/cliutil"
	"repro/internal/designflow"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/regularity"
	"repro/internal/report"
)

func main() {
	var (
		style = flag.String("style", "asic", "layout style: sram, datapath, asic")
		cells = flag.Int("cells", 400, "standard cells (asic style)")
		util  = flag.Float64("util", 0.7, "row utilization (asic style)")
		pitch = flag.Int("pitch", 60, "pattern window pitch, λ")
		seed  = flag.Uint64("seed", 1, "RNG seed")
		in    = flag.String("in", "", "read the layout from a text-interchange file instead of generating")
		out   = flag.String("out", "", "write the layout to a text-interchange file")
	)
	o := &obs.Flags{}
	o.RegisterFlags(flag.CommandLine)
	prof := profiling.Register()
	flag.Parse()
	cliutil.Validate(prof, o)
	slog.SetDefault(o.Logger(os.Stderr))

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "regscan: %v\n", err)
		os.Exit(1)
	}
	_ = o.StartRoot(context.Background(), "regscan.run")
	err := runIO(*style, *cells, *util, *pitch, *seed, *in, *out)
	o.Finish(os.Stderr)
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "regscan: %v\n", err)
		os.Exit(1)
	}
}

// runIO resolves the layout source (file or generator) and optional dump,
// then analyzes it.
func runIO(style string, cells int, util float64, pitch int, seed uint64, in, out string) error {
	var (
		l   *layout.Layout
		err error
	)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		l, err = layout.Read(f)
		if err != nil {
			return err
		}
		return analyze(l, pitch, seed, out)
	}
	l, err = generate(style, cells, util, seed)
	if err != nil {
		return err
	}
	return analyze(l, pitch, seed, out)
}

// generate builds a layout in one of the built-in styles.
func generate(style string, cells int, util float64, seed uint64) (*layout.Layout, error) {
	switch style {
	case "sram":
		return layout.GenerateSRAMArray(32, 32)
	case "datapath":
		return layout.GenerateDatapath(32, 8, 12)
	case "asic":
		return layout.GenerateRandomLogic(layout.RandomLogicConfig{
			Cells: cells, RowUtil: util, RouteTracks: 6, Seed: seed,
		})
	default:
		return nil, fmt.Errorf("unknown style %q (want sram, datapath, asic)", style)
	}
}

// analyze scans the layout, prints the report, and optionally dumps the
// layout to a file.
func analyze(l *layout.Layout, pitch int, seed uint64, out string) error {
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := layout.Write(f, l); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote layout to %s\n", out)
	}
	sd, err := l.Sd()
	if err != nil {
		return err
	}
	rep, err := regularity.Analyze(l, pitch)
	if err != nil {
		return err
	}
	sigma, err := regularity.DefaultPredictionErrorModel().Error(rep.Regularity)
	if err != nil {
		return err
	}
	iters, cost, err := designflow.RegularityDesignCost(10e6, sigma, designflow.ClosureConfig{
		InitialOvershoot: 0.5, Tolerance: 0.02, ResidualFloor: 0.08, Seed: seed,
	}, designflow.DefaultIterationCostModel(), 300)
	if err != nil {
		return err
	}

	fmt.Printf("layout %q: %d×%d λ, %d transistors, %d rects\n",
		l.Name, l.Width, l.Height, l.Transistors, len(l.Rects))
	fmt.Printf("measured s_d: %s λ²/transistor\n\n", report.Num(sd))
	tbl := report.NewTable("pattern scan @ pitch "+fmt.Sprint(rep.Pitch),
		"windows", "non-empty", "unique", "regularity", "top-8 coverage", "max repeat")
	tbl.AddRow(rep.Windows, rep.NonEmpty, rep.UniquePatterns, rep.Regularity, rep.TopCoverage, rep.MaxRepeat)
	fmt.Println(tbl.String())
	fmt.Printf("§3.2 implication at 10M transistors: σ_pred = %s → %.1f closure iterations → C_DE ≈ $%s\n",
		report.Num(sigma), iters, report.Num(cost))
	return nil
}
