package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunStyles(t *testing.T) {
	for _, style := range []string{"sram", "datapath", "asic"} {
		if err := runIO(style, 100, 0.7, 60, 1, "", ""); err != nil {
			t.Errorf("style %q: %v", style, err)
		}
	}
}

func TestRunUnknownStyle(t *testing.T) {
	if err := runIO("mystery", 100, 0.7, 60, 1, "", ""); err == nil {
		t.Fatal("accepted unknown style")
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	if err := runIO("asic", 0, 0.7, 60, 1, "", ""); err == nil {
		t.Fatal("accepted zero cells")
	}
	if err := runIO("asic", 100, 1.5, 60, 1, "", ""); err == nil {
		t.Fatal("accepted utilization > 1")
	}
	if err := runIO("asic", 100, 0.7, 0, 1, "", ""); err == nil {
		t.Fatal("accepted zero pitch")
	}
}

func TestRunFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sram.lay")
	// Generate + dump.
	if err := runIO("sram", 0, 0, 60, 1, "", path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("dump not written: %v", err)
	}
	// Read back and analyze.
	if err := runIO("", 0, 0, 60, 1, path, ""); err != nil {
		t.Fatalf("scan of dumped layout failed: %v", err)
	}
}

func TestRunMissingInputFile(t *testing.T) {
	if err := runIO("", 0, 0, 60, 1, "/nonexistent/file.lay", ""); err == nil {
		t.Fatal("accepted missing input file")
	}
}

func TestRunMalformedInputFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.lay")
	if err := os.WriteFile(path, []byte("GARBAGE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runIO("", 0, 0, 60, 1, path, ""); err == nil {
		t.Fatal("accepted malformed layout file")
	}
}

func TestRunUnwritableOutput(t *testing.T) {
	if err := runIO("sram", 0, 0, 60, 1, "", "/nonexistent/dir/out.lay"); err == nil {
		t.Fatal("accepted unwritable output path")
	}
}
