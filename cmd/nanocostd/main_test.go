package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// testConfig is the scalar config the old run signature took, as a
// serve.Config.
func testConfig(addr string) serve.Config {
	return serve.Config{
		Addr:            addr,
		RequestTimeout:  time.Second,
		ShutdownTimeout: time.Second,
		MaxInFlight:     4,
		MaxBodyBytes:    1 << 20,
	}
}

// TestRunServesAndDrainsOnSIGTERM drives the real entry point: start the
// daemon on an ephemeral port, deliver SIGTERM to the process, and require
// a clean (nil-error) exit within the drain window.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), testConfig("127.0.0.1:0"), "", "", logger)
	}()

	// Give the listener a beat to come up, then ask the daemon to stop the
	// way an init system would.
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after SIGTERM drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

// TestRunWritesMemoSnapshotOnCleanDrain: with -memo-snapshot set, a
// clean shutdown must leave a loadable snapshot file behind, and a
// subsequent start must read it without complaint.
func TestRunWritesMemoSnapshotOnCleanDrain(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	snap := filepath.Join(t.TempDir(), "memo.snapshot")
	for i := 0; i < 2; i++ { // second pass exercises the load path
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, testConfig("127.0.0.1:0"), "", snap, logger)
		}()
		time.Sleep(100 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("pass %d: run returned %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("pass %d: run did not exit", i)
		}
		if _, err := os.Stat(snap); err != nil {
			t.Fatalf("pass %d: no snapshot after clean drain: %v", i, err)
		}
	}
}

// TestRunRejectsBadAddr: an unbindable address is a startup error, not a
// hang.
func TestRunRejectsBadAddr(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := run(context.Background(), testConfig("256.0.0.1:99999"), "", "", logger); err == nil {
		t.Fatal("accepted an unbindable address")
	}
}

// TestRunRejectsBadDebugAddr: an unbindable -debug-addr fails startup the
// same way the main address does — never a silently missing profiler.
func TestRunRejectsBadDebugAddr(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := run(context.Background(), testConfig("127.0.0.1:0"), "256.0.0.1:99999", "", logger); err == nil {
		t.Fatal("accepted an unbindable debug address")
	}
}

// TestDebugListenerServesPprof: the opt-in listener answers the pprof
// index and a cheap profile on its own mux.
func TestDebugListenerServesPprof(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ln, err := startDebugListener("127.0.0.1:0", logger)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	base := fmt.Sprintf("http://%s", ln.Addr().String())
	client := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/pprof/cmdline"} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s returned an empty body", path)
		}
	}
}
