package main

import (
	"io"
	"log/slog"
	"syscall"
	"testing"
	"time"
)

// TestRunServesAndDrainsOnSIGTERM drives the real entry point: start the
// daemon on an ephemeral port, deliver SIGTERM to the process, and require
// a clean (nil-error) exit within the drain window.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", time.Second, time.Second, 4, 1<<20, logger)
	}()

	// Give the listener a beat to come up, then ask the daemon to stop the
	// way an init system would.
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after SIGTERM drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

// TestRunRejectsBadAddr: an unbindable address is a startup error, not a
// hang.
func TestRunRejectsBadAddr(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := run("256.0.0.1:99999", time.Second, time.Second, 4, 1<<20, logger); err == nil {
		t.Fatal("accepted an unbindable address")
	}
}
