// Command nanocostd serves the paper's cost models (eq (1)–(7)) over
// HTTP/JSON. It runs until interrupted (SIGINT/SIGTERM), then drains
// in-flight requests before exiting.
//
// Routes: POST /v1/cost, /v1/designcost, /v1/generalized, /v1/sweep,
// /v1/batch; GET /v1/figures/{1..4}, /healthz, /metrics. Sweeps and
// figures stream NDJSON under "Accept: application/x-ndjson"; figure
// responses carry strong ETags for If-None-Match revalidation.
//
// Example:
//
//	nanocostd -addr :8087 -timeout 15s
//	curl -s localhost:8087/healthz
//	curl -s -X POST localhost:8087/v1/cost -d '{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":5000}'
//	curl -s -X POST localhost:8087/v1/batch -d '{"items":[{"kind":"designcost","body":{"transistors":10e6,"sd":300}}]}'
//	curl -sN -H 'Accept: application/x-ndjson' -X POST localhost:8087/v1/sweep \
//	  -d '{"scenario":{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":5000},"variable":"sd","lo":200,"hi":2000,"points":256}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8087", "listen address")
		timeout  = flag.Duration("timeout", 15*time.Second, "per-request evaluation deadline")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		inflight = flag.Int("max-inflight", 0, "concurrent model requests before 429 (0 = 4 × GOMAXPROCS)")
		maxBody  = flag.Int64("max-body", 1<<20, "request body size cap, bytes")
		workers  = flag.Int("workers", 0, "worker goroutines for sweeps (0 = all cores); results are identical for any value")
		verbose  = flag.Bool("v", false, "log at debug level")
	)
	prof := profiling.Register()
	flag.Parse()
	cliutil.Validate(prof)
	parallel.SetDefaultWorkers(*workers)

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "nanocostd: %v\n", err)
		os.Exit(1)
	}
	err := run(*addr, *timeout, *drain, *inflight, *maxBody, logger)
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanocostd: %v\n", err)
		os.Exit(1)
	}
}

// run serves until SIGINT/SIGTERM, then lets the server drain.
func run(addr string, timeout, drain time.Duration, inflight int, maxBody int64, logger *slog.Logger) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.NewServer(serve.Config{
		Addr:            addr,
		RequestTimeout:  timeout,
		ShutdownTimeout: drain,
		MaxInFlight:     inflight,
		MaxBodyBytes:    maxBody,
		Logger:          logger,
	})
	return srv.ListenAndServe(ctx)
}
