// Command nanocostd serves the paper's cost models (eq (1)–(7)) over
// HTTP/JSON. It runs until interrupted (SIGINT/SIGTERM), then drains
// in-flight requests before exiting.
//
// Routes: POST /v1/cost, /v1/designcost, /v1/generalized, /v1/sweep,
// /v1/batch, /v1/jobs; GET /v1/figures/{1..4}, /v1/jobs/{id},
// /v1/jobs/{id}/result, /healthz, /metrics,
// /debug/trace/{id}. Sweeps and figures stream NDJSON under
// "Accept: application/x-ndjson"; figure responses carry strong ETags
// for If-None-Match revalidation. Every response carries an
// X-Request-Id and (for model routes) an X-Trace-Id whose span tree is
// retrievable at /debug/trace/{id}.
//
// With -debug-addr the daemon additionally serves net/http/pprof on a
// separate listener, kept off the public address so profiling endpoints
// are an explicit operator opt-in.
//
// Example:
//
//	nanocostd -addr :8087 -timeout 15s -log-format json
//	nanocostd -addr :8087 -debug-addr 127.0.0.1:6060
//	curl -s localhost:8087/healthz
//	curl -s -X POST localhost:8087/v1/cost -d '{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":5000}'
//	curl -s -X POST localhost:8087/v1/batch -d '{"items":[{"kind":"designcost","body":{"transistors":10e6,"sd":300}}]}'
//	curl -sN -H 'Accept: application/x-ndjson' -X POST localhost:8087/v1/sweep \
//	  -d '{"scenario":{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":5000},"variable":"sd","lo":200,"hi":2000,"points":256}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8087", "listen address")
		debugAddr = flag.String("debug-addr", "", "optional separate listen address for net/http/pprof (disabled when empty)")
		timeout   = flag.Duration("timeout", 15*time.Second, "per-request evaluation deadline")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		inflight  = flag.Int("max-inflight", 0, "concurrent model requests before 429 (0 = 4 × GOMAXPROCS)")
		maxBody   = flag.Int64("max-body", 1<<20, "request body size cap, bytes")
		workers   = flag.Int("workers", 0, "worker goroutines for sweeps (0 = all cores); results are identical for any value")
		jobDir    = flag.String("job-dir", "", "directory for simulation-job checkpoints (empty = checkpointing disabled)")
		maxJobs   = flag.Int("max-jobs", 0, "concurrent simulation jobs before 429 (0 = 2)")
		memoSnap  = flag.String("memo-snapshot", "", "file for memo-cache snapshots: loaded at start, written after a clean drain (empty = disabled)")
		peers     = flag.String("peers", "", "comma-separated peer replicas (host:port) whose distributed jobs this daemon pulls shards from; implies -distribute")
		distrib   = flag.Bool("distribute", false, "run jobs through the shard-lease coordinator so peer replicas can pull shards (implied by -peers)")
		leaseTTL  = flag.Duration("lease-ttl", 10*time.Second, "distributed shard-lease lifetime; a dead worker's shards re-run one TTL after its last renewal")
		workerID  = flag.String("worker-id", "", "name of this replica in distributed-job lease tables (default host:pid)")
		jobWrk    = flag.Int("job-workers", 0, "local evaluation goroutines for distributed jobs (0 = all cores, -1 = coordinate only)")
	)
	o := &obs.Flags{}
	o.RegisterFlags(flag.CommandLine)
	prof := profiling.Register()
	flag.Parse()
	cliutil.Validate(prof, o)
	parallel.SetDefaultWorkers(*workers)

	logger := o.Logger(os.Stderr)

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "nanocostd: %v\n", err)
		os.Exit(1)
	}
	ctx := o.StartRoot(context.Background(), "nanocostd.run")
	err := run(ctx, serve.Config{
		Addr:            *addr,
		RequestTimeout:  *timeout,
		ShutdownTimeout: *drain,
		MaxInFlight:     *inflight,
		MaxBodyBytes:    *maxBody,
		Logger:          logger,
		JobDir:          *jobDir,
		MaxJobs:         *maxJobs,
		Peers:           splitPeers(*peers),
		DistributeJobs:  *distrib,
		LeaseTTL:        *leaseTTL,
		WorkerID:        *workerID,
		JobWorkers:      *jobWrk,
	}, *debugAddr, *memoSnap, logger)
	o.Finish(os.Stderr)
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanocostd: %v\n", err)
		os.Exit(1)
	}
}

// splitPeers parses the -peers list: comma-separated host:port entries,
// empties dropped.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// run serves until SIGINT/SIGTERM (or ctx cancellation), then lets the
// server drain. A non-empty debugAddr additionally serves pprof on its
// own listener for the daemon's lifetime. A non-empty memoSnap warms the
// memo caches from disk before serving and snapshots them back after a
// clean drain, so a rolling restart of a replica keeps its cache shard.
func run(ctx context.Context, cfg serve.Config, debugAddr, memoSnap string, logger *slog.Logger) error {
	cfg.Logger = logger
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	if debugAddr != "" {
		ln, err := startDebugListener(debugAddr, logger)
		if err != nil {
			return err
		}
		defer ln.Close()
	}

	if memoSnap != "" {
		switch st, err := memo.LoadSnapshot(memoSnap); {
		case err == nil:
			logger.Info("memo snapshot loaded", "path", memoSnap,
				"caches", st.Caches, "entries", st.Entries, "skipped", st.Skipped)
		case errors.Is(err, fs.ErrNotExist):
			logger.Info("memo snapshot absent, starting cold", "path", memoSnap)
		default:
			// A rotten snapshot must not stop the daemon: serving cold is
			// strictly better than not serving.
			logger.Warn("memo snapshot load failed, starting cold", "path", memoSnap, "error", err)
		}
	}

	srv := serve.NewServer(cfg)
	err := srv.ListenAndServe(ctx)
	if memoSnap != "" && err == nil {
		if st, serr := memo.SaveSnapshot(memoSnap); serr != nil {
			logger.Warn("memo snapshot save failed", "path", memoSnap, "error", serr)
		} else {
			logger.Info("memo snapshot saved", "path", memoSnap,
				"caches", st.Caches, "entries", st.Entries)
		}
	}
	return err
}

// startDebugListener binds addr and serves the net/http/pprof handlers on
// it in the background. The handlers are mounted on a private mux — never
// the default one — so enabling profiling cannot leak pprof onto the
// service address, and the service mux stays free of debug routes.
func startDebugListener(addr string, logger *slog.Logger) (net.Listener, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nanocostd: debug listen %s: %w", addr, err)
	}
	logger.Info("nanocostd debug listening", "addr", ln.Addr().String())
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		// Serve returns when the listener closes at shutdown; pprof has no
		// in-flight state worth draining.
		_ = srv.Serve(ln)
	}()
	return ln, nil
}
