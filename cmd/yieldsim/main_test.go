package main

import "testing"

func TestRunUnclustered(t *testing.T) {
	if err := run(0.5, 1.0, 0, 100, 50, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunClustered(t *testing.T) {
	if err := run(0.5, 1.5, 0.8, 100, 50, 2, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(-1, 1, 0, 100, 50, 1, 0); err == nil {
		t.Fatal("accepted negative defect density")
	}
	if err := run(0.5, -1, 0, 100, 50, 1, 0); err == nil {
		t.Fatal("accepted negative area")
	}
	if err := run(0.5, 1, 0, 0, 50, 1, 0); err == nil {
		t.Fatal("accepted zero die per wafer")
	}
	if err := run(0.5, 1, 0, 100, 0, 1, 0); err == nil {
		t.Fatal("accepted zero wafers")
	}
	if err := run(0.5, 1, -1, 100, 50, 1, 0); err == nil {
		t.Fatal("accepted negative alpha")
	}
}
