package main

import (
	"path/filepath"
	"testing"
)

func TestRunUnclustered(t *testing.T) {
	if err := run(0.5, 1.0, 0, 100, 50, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunClustered(t *testing.T) {
	if err := run(0.5, 1.5, 0.8, 100, 50, 2, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(-1, 1, 0, 100, 50, 1, 0); err == nil {
		t.Fatal("accepted negative defect density")
	}
	if err := run(0.5, -1, 0, 100, 50, 1, 0); err == nil {
		t.Fatal("accepted negative area")
	}
	if err := run(0.5, 1, 0, 0, 50, 1, 0); err == nil {
		t.Fatal("accepted zero die per wafer")
	}
	if err := run(0.5, 1, 0, 100, 0, 1, 0); err == nil {
		t.Fatal("accepted zero wafers")
	}
	if err := run(0.5, 1, -1, 100, 50, 1, 0); err == nil {
		t.Fatal("accepted negative alpha")
	}
}

func TestRunSharded(t *testing.T) {
	if err := runSharded(0.5, 1.0, 0, 100, 50, 1, 0, 4, ""); err != nil {
		t.Fatal(err)
	}
	if err := runSharded(0.5, 1.5, 0.8, 100, 50, 2, 2, 8, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardedCheckpointResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := runSharded(0.5, 1.0, 0, 100, 50, 3, 0, 8, dir); err != nil {
		t.Fatal(err)
	}
	// Second run over the same directory resumes every shard.
	if err := runSharded(0.5, 1.0, 0, 100, 50, 3, 0, 8, dir); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardedRejectsBadInputs(t *testing.T) {
	if err := runSharded(-1, 1, 0, 100, 50, 1, 0, 4, ""); err == nil {
		t.Fatal("accepted negative defect density")
	}
	if err := runSharded(0.5, 1, 0, 0, 50, 1, 0, 4, ""); err == nil {
		t.Fatal("accepted zero die per wafer")
	}
	if err := runSharded(0.5, 1, -1, 100, 50, 1, 0, 4, ""); err == nil {
		t.Fatal("accepted negative alpha")
	}
}
