// Command yieldsim runs Monte Carlo yield experiments and compares the
// measurement with the analytic models, from flags.
//
// Example:
//
//	yieldsim -d0 0.5 -area 1.5 -alpha 0.8 -die 400 -wafers 300
//
// With -shards the die·wafers trials run through the sharded mcjob
// engine instead of the single-pass simulator; -checkpoint persists
// completed shards so a killed run resumes where it stopped. The
// reported yield comes from the same per-trial draw law either way, and
// the sharded result is independent of shard count, worker count and
// resume history.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/cliutil"
	"repro/internal/mcjob"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/yield"
)

func main() {
	var (
		d0         = flag.Float64("d0", 0.5, "defect density, defects/cm²")
		area       = flag.Float64("area", 1.0, "critical area per die, cm²")
		alpha      = flag.Float64("alpha", 0, "clustering α (0 = unclustered)")
		die        = flag.Int("die", 400, "die per wafer")
		wafers     = flag.Int("wafers", 200, "wafers to simulate")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		workers    = flag.Int("workers", 0, "simulation goroutines (0 = all cores); results are identical for any value")
		shards     = flag.Int("shards", 0, "run through the sharded engine with this many shards (0 = single-pass simulator)")
		checkpoint = flag.String("checkpoint", "", "checkpoint directory for the sharded engine (implies -shards 64 if -shards is unset)")
	)
	o := &obs.Flags{}
	o.RegisterFlags(flag.CommandLine)
	prof := profiling.Register()
	flag.Parse()
	cliutil.Validate(prof, o)
	slog.SetDefault(o.Logger(os.Stderr))

	parallel.SetDefaultWorkers(*workers)
	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "yieldsim: %v\n", err)
		os.Exit(1)
	}
	_ = o.StartRoot(context.Background(), "yieldsim.run")
	var err error
	if *shards > 0 || *checkpoint != "" {
		err = runSharded(*d0, *area, *alpha, *die, *wafers, *seed, *workers, *shards, *checkpoint)
	} else {
		err = run(*d0, *area, *alpha, *die, *wafers, *seed, *workers)
	}
	o.Finish(os.Stderr)
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldsim: %v\n", err)
		os.Exit(1)
	}
}

// runSharded evaluates the same experiment through the sharded mcjob
// engine: die·wafers independent die trials under the chosen yield law,
// split into shards, optionally checkpointed. Progress goes to stderr,
// the report to stdout.
func runSharded(d0, area, alpha float64, die, wafers int, seed uint64, workers, shards int, checkpoint string) error {
	lambda, err := yield.Lambda(d0, area)
	if err != nil {
		return err
	}
	if die <= 0 || wafers <= 0 {
		return fmt.Errorf("die per wafer and wafers must be positive, got %d and %d", die, wafers)
	}
	if alpha < 0 {
		return fmt.Errorf("cluster alpha must be non-negative, got %g", alpha)
	}
	k, err := mcjob.NewDefectKernel(mcjob.DefectSpec{Lambda: lambda, Alpha: alpha})
	if err != nil {
		return err
	}
	res, err := mcjob.Run(context.Background(), k, mcjob.RunConfig{
		Trials:        int64(die) * int64(wafers),
		Shards:        shards,
		Seed:          seed,
		Workers:       workers,
		CheckpointDir: checkpoint,
		OnProgress: func(p mcjob.Progress) {
			fmt.Fprintf(os.Stderr, "shard %d/%d done (%d/%d trials)\n",
				p.ShardsDone, p.Shards, p.TrialsDone, p.Trials)
		},
	})
	if err != nil {
		return err
	}
	good, total := res.Counts["good"], res.Trials
	fmt.Printf("λ = D0·A = %s fatal defects/die\n", report.Num(lambda))
	fmt.Printf("sharded run: %d shards, seed %d\n", res.Shards, res.Seed)
	fmt.Printf("measured yield: %s ± %s  (%d/%d good die)\n\n",
		report.Num(res.Values["yield"]), report.Num(res.Values["stderr"]), good, total)
	printModelTable(lambda, alpha, res.Values["yield"])
	return nil
}

func run(d0, area, alpha float64, die, wafers int, seed uint64, workers int) error {
	lambda, err := yield.Lambda(d0, area)
	if err != nil {
		return err
	}
	res, err := yield.Simulate(yield.SimConfig{
		DiePerWafer:  die,
		Wafers:       wafers,
		Lambda:       lambda,
		ClusterAlpha: alpha,
		Seed:         seed,
		Workers:      workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("λ = D0·A = %s fatal defects/die\n", report.Num(lambda))
	fmt.Printf("measured yield: %s ± %s  (%d/%d good die)\n\n",
		report.Num(res.Yield), report.Num(res.StdErr), res.GoodDie, res.TotalDie)
	printModelTable(lambda, alpha, res.Yield)
	return nil
}

// printModelTable renders the analytic-model comparison shared by both
// run paths.
func printModelTable(lambda, alpha, measured float64) {
	tbl := report.NewTable("analytic models", "model", "yield", "Δ vs measured")
	models := []yield.Model{yield.Poisson{}, yield.Murphy{}, yield.Seeds{}}
	if alpha > 0 {
		models = append(models, yield.NegBinomial{Alpha: alpha})
	}
	for _, m := range models {
		y := m.Yield(lambda)
		tbl.AddRow(m.Name(), y, y-measured)
	}
	fmt.Println(tbl.String())
}
