// Command yieldsim runs Monte Carlo yield experiments and compares the
// measurement with the analytic models, from flags.
//
// Example:
//
//	yieldsim -d0 0.5 -area 1.5 -alpha 0.8 -die 400 -wafers 300
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/yield"
)

func main() {
	var (
		d0      = flag.Float64("d0", 0.5, "defect density, defects/cm²")
		area    = flag.Float64("area", 1.0, "critical area per die, cm²")
		alpha   = flag.Float64("alpha", 0, "clustering α (0 = unclustered)")
		die     = flag.Int("die", 400, "die per wafer")
		wafers  = flag.Int("wafers", 200, "wafers to simulate")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		workers = flag.Int("workers", 0, "simulation goroutines (0 = all cores); results are identical for any value")
	)
	o := &obs.Flags{}
	o.RegisterFlags(flag.CommandLine)
	prof := profiling.Register()
	flag.Parse()
	cliutil.Validate(prof, o)
	slog.SetDefault(o.Logger(os.Stderr))

	parallel.SetDefaultWorkers(*workers)
	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "yieldsim: %v\n", err)
		os.Exit(1)
	}
	_ = o.StartRoot(context.Background(), "yieldsim.run")
	err := run(*d0, *area, *alpha, *die, *wafers, *seed, *workers)
	o.Finish(os.Stderr)
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldsim: %v\n", err)
		os.Exit(1)
	}
}

func run(d0, area, alpha float64, die, wafers int, seed uint64, workers int) error {
	lambda, err := yield.Lambda(d0, area)
	if err != nil {
		return err
	}
	res, err := yield.Simulate(yield.SimConfig{
		DiePerWafer:  die,
		Wafers:       wafers,
		Lambda:       lambda,
		ClusterAlpha: alpha,
		Seed:         seed,
		Workers:      workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("λ = D0·A = %s fatal defects/die\n", report.Num(lambda))
	fmt.Printf("measured yield: %s ± %s  (%d/%d good die)\n\n",
		report.Num(res.Yield), report.Num(res.StdErr), res.GoodDie, res.TotalDie)
	tbl := report.NewTable("analytic models", "model", "yield", "Δ vs measured")
	models := []yield.Model{yield.Poisson{}, yield.Murphy{}, yield.Seeds{}}
	if alpha > 0 {
		models = append(models, yield.NegBinomial{Alpha: alpha})
	}
	for _, m := range models {
		y := m.Yield(lambda)
		tbl.AddRow(m.Name(), y, y-res.Yield)
	}
	fmt.Println(tbl.String())
	return nil
}
