package main

import (
	"context"
	"io"
	"log/slog"
	"testing"
	"time"
)

func testLogger() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// TestRunRequiresReplicas: an empty replica list is a startup error.
func TestRunRequiresReplicas(t *testing.T) {
	if err := run(context.Background(), "127.0.0.1:0", " , ", time.Second, time.Second, 1<<20, testLogger()); err == nil {
		t.Fatal("accepted an empty replica list")
	}
}

// TestRunServesAndStopsOnCancel: the router binds, serves and exits
// cleanly when its context is cancelled. Replicas need not be up — the
// router only dials them per proxied request.
func TestRunServesAndStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "127.0.0.1:1,127.0.0.1:2", time.Second, time.Second, 1<<20, testLogger())
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after cancel", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
}
