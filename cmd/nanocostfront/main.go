// Command nanocostfront routes requests across a set of nanocostd
// replicas by content hash: the same request body always reaches the
// same replica, so per-replica memo caches and job checkpoints shard by
// content instead of duplicating everywhere. Health is passive — a
// replica whose connection fails is benched for a cooldown and
// idempotent requests retry on the next ring member.
//
// Router endpoints: /healthz (liveness), /readyz (ready while at least
// one replica is unbenched), /frontz (topology and bench state),
// /metrics (scrape), /fleetz (every replica's metrics merged under a
// replica label plus fleet rollups), and /debug/trace/{id} (federated
// span tree joining the router's spans with every replica's under one
// trace id). Everything else is proxied with X-Request-Id, X-Trace-Id
// and X-Parent-Span-Id forwarded on each hop.
//
// Example:
//
//	nanocostfront -addr :8080 -replicas 127.0.0.1:8087,127.0.0.1:8088
//	curl -s localhost:8080/frontz
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/front"
	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		replicas = flag.String("replicas", "", "comma-separated nanocostd replica addresses (host:port), required")
		bench    = flag.Duration("bench", time.Second, "cooldown before a failed replica is retried")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-attempt proxy deadline")
		maxBody  = flag.Int64("max-body", 1<<20, "request body size cap, bytes")
	)
	o := &obs.Flags{}
	o.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := o.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "nanocostfront: %v\n", err)
		os.Exit(2)
	}

	logger := o.Logger(os.Stderr)
	err := run(context.Background(), *addr, *replicas, *bench, *timeout, *maxBody, logger)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanocostfront: %v\n", err)
		os.Exit(1)
	}
}

// run serves until SIGINT/SIGTERM (or ctx cancellation), then drains.
func run(ctx context.Context, addr, replicas string, bench, timeout time.Duration, maxBody int64, logger *slog.Logger) error {
	var list []string
	for _, r := range strings.Split(replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			list = append(list, r)
		}
	}
	if len(list) == 0 {
		return fmt.Errorf("-replicas is required (comma-separated host:port list)")
	}
	rt, err := front.New(front.Config{
		Replicas:     list,
		BenchFor:     bench,
		ProxyTimeout: timeout,
		MaxBodyBytes: maxBody,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	return rt.ListenAndServe(ctx, addr)
}
