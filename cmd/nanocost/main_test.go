package main

import (
	"context"
	"testing"
)

func TestParseSweep(t *testing.T) {
	lo, hi, n, err := parseSweep("120:2000:40")
	if err != nil {
		t.Fatal(err)
	}
	if lo != 120 || hi != 2000 || n != 40 {
		t.Fatalf("parsed %v:%v:%v", lo, hi, n)
	}
	for _, bad := range []string{"", "1:2", "1:2:3:4", "x:2:3", "1:y:3", "1:2:z"} {
		if _, _, _, err := parseSweep(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRunPointEvaluation(t *testing.T) {
	if err := run(context.Background(), 0.18, 300, 10e6, 5000, 0.4, 8, 1, -1, false, "", false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunOptimize(t *testing.T) {
	if err := run(context.Background(), 0.18, 300, 10e6, 50000, 0.9, 8, 1, 1e6, true, "", false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	if err := run(context.Background(), 0.18, 300, 10e6, 5000, 0.4, 8, 1, -1, false, "120:2000:10", false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	// s_d below the eq (6) domain.
	if err := run(context.Background(), 0.18, 50, 10e6, 5000, 0.4, 8, 1, -1, false, "", false, 0); err == nil {
		t.Fatal("accepted s_d below s_d0")
	}
	// Invalid sweep spec.
	if err := run(context.Background(), 0.18, 300, 10e6, 5000, 0.4, 8, 1, -1, false, "bad", false, 0); err == nil {
		t.Fatal("accepted malformed sweep")
	}
	// Zero yield.
	if err := run(context.Background(), 0.18, 300, 10e6, 5000, 0, 8, 1, -1, false, "", false, 0); err == nil {
		t.Fatal("accepted zero yield")
	}
	// Negative feature size breaks the mask model.
	if err := run(context.Background(), -1, 300, 10e6, 5000, 0.4, 8, 1, -1, false, "", false, 0); err == nil {
		t.Fatal("accepted negative lambda")
	}
}

func TestRunUtilization(t *testing.T) {
	if err := run(context.Background(), 0.18, 300, 10e6, 5000, 0.4, 8, 0.5, -1, false, "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 0.18, 300, 10e6, 5000, 0.4, 8, 1.5, -1, false, "", false, 0); err == nil {
		t.Fatal("accepted utilization > 1")
	}
}

func TestRunWithTestCost(t *testing.T) {
	if err := run(context.Background(), 0.18, 300, 10e6, 5000, 0.4, 8, 1, -1, false, "", true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunMonteCarlo(t *testing.T) {
	if err := run(context.Background(), 0.18, 300, 10e6, 5000, 0.6, 8, 1, -1, false, "", false, 500); err != nil {
		t.Fatal(err)
	}
}
