// Command nanocost evaluates the paper's transistor cost model (eq 4) at
// one operating point or over a sweep, from flags.
//
// Examples:
//
//	nanocost -lambda 0.18 -sd 300 -ntr 10e6 -wafers 5000 -yield 0.4
//	nanocost -lambda 0.13 -ntr 10e6 -wafers 50000 -yield 0.9 -optimize
//	nanocost -lambda 0.18 -ntr 10e6 -wafers 5000 -yield 0.4 -sweep-sd 120:2000:40
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/maskcost"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/report"
)

func main() {
	var (
		lambda  = flag.Float64("lambda", 0.18, "minimum feature size λ, µm")
		sd      = flag.Float64("sd", 300, "design decompression index s_d")
		ntr     = flag.Float64("ntr", 10e6, "transistors per chip N_tr")
		wafers  = flag.Float64("wafers", 5000, "production volume N_w, wafers")
		yld     = flag.Float64("yield", 0.8, "manufacturing yield Y")
		cmsq    = flag.Float64("cmsq", 8.0, "manufacturing cost Cm_sq, $/cm²")
		util    = flag.Float64("u", 1.0, "hardware utilization u (FPGA < 1)")
		mask    = flag.Float64("mask", -1, "mask-set cost C_MA, $ (-1 = node-dependent model)")
		optimiz = flag.Bool("optimize", false, "locate the cost-optimal s_d instead of evaluating -sd")
		sweep   = flag.String("sweep-sd", "", "sweep s_d as lo:hi:points and print the curve")
		withTst = flag.Bool("testcost", false, "include the §2.5 cost of test in the breakdown")
		mc      = flag.Int("mc", 0, "run N Monte Carlo samples with default input uncertainty")
		workers = flag.Int("workers", 0, "worker goroutines for sweeps and Monte Carlo (0 = all cores); results are identical for any value")
	)
	o := &obs.Flags{}
	o.RegisterFlags(flag.CommandLine)
	prof := profiling.Register()
	flag.Parse()
	cliutil.Validate(prof, o)
	parallel.SetDefaultWorkers(*workers)
	// Route any library logging through the configured handler.
	slog.SetDefault(o.Logger(os.Stderr))

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "nanocost: %v\n", err)
		os.Exit(1)
	}
	ctx := o.StartRoot(context.Background(), "nanocost.run")
	err := run(ctx, *lambda, *sd, *ntr, *wafers, *yld, *cmsq, *util, *mask, *optimiz, *sweep, *withTst, *mc)
	o.Finish(os.Stderr)
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanocost: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, lambda, sd, ntr, wafers, yld, cmsq, util, mask float64, optimize bool, sweep string, withTest bool, mcSamples int) error {
	if mask < 0 {
		var err error
		mask, err = maskcost.DefaultModel().SetCost(lambda)
		if err != nil {
			return err
		}
	}
	s := core.Scenario{
		Process: core.Process{
			Name:         "cli",
			LambdaUM:     lambda,
			CostPerCM2:   cmsq,
			Yield:        yld,
			WaferAreaCM2: 300,
		},
		Design:      core.Design{Name: "cli", Transistors: ntr, Sd: sd},
		DesignCost:  core.DefaultDesignCostModel(),
		MaskCost:    mask,
		Wafers:      wafers,
		Utilization: util,
	}

	switch {
	case mcSamples > 0:
		u := core.UncertainScenario{
			Base:  s,
			Yield: core.Uniform(math.Max(0.05, yld*0.7), math.Min(1, yld*1.2)),
			CmSq:  core.LogNormal(cmsq, 1.3),
			Sd:    core.Uniform(math.Max(s.DesignCost.Sd0*1.05, sd*0.8), sd*1.4),
		}
		q, err := u.MonteCarloCtx(ctx, mcSamples, 1)
		if err != nil {
			return err
		}
		fmt.Printf("Monte Carlo (%d samples): p5 $%s  p50 $%s  p95 $%s per transistor\n",
			q.N, report.Num(q.P5), report.Num(q.P50), report.Num(q.P95))
		if q.Redraws > 0 {
			fmt.Printf("note: %d joint draws (%.1f%%) fell outside the model domain and were redrawn — quantiles describe the domain-truncated distribution\n",
				q.Redraws, 100*float64(q.Redraws)/float64(q.N+q.Redraws))
		}
		return nil

	case sweep != "":
		lo, hi, n, err := parseSweep(sweep)
		if err != nil {
			return err
		}
		pts, err := core.SweepSdCtx(ctx, s, lo, hi, n)
		if err != nil {
			return err
		}
		tbl := report.NewTable("transistor cost vs s_d", "s_d", "C_tr $", "mfg $", "design $", "die $", "die cm²")
		for _, p := range pts {
			b := p.Breakdown
			tbl.AddRow(p.X, b.Total, b.Manufacturing, b.DesignAndMask, b.DieCost, b.DieArea)
		}
		fmt.Println(tbl.String())
		return nil

	case optimize:
		opt, err := core.OptimalSd(s, 5000)
		if err != nil {
			return err
		}
		fmt.Printf("optimal s_d = %.1f\n", opt.Sd)
		printBreakdown(opt.Breakdown, s)
		return nil

	default:
		b, err := s.TransistorCostCtx(ctx)
		if err != nil {
			return err
		}
		printBreakdown(b, s)
		if withTest {
			withB, perTx, err := core.TransistorCostWithTest(s, core.DefaultTestCostModel())
			if err != nil {
				return err
			}
			fmt.Printf("with test (§2.5):     $%s/transistor ($%s test per die)\n",
				report.Num(withB.Total), report.Num(perTx*ntr))
		}
		return nil
	}
}

func printBreakdown(b core.Breakdown, s core.Scenario) {
	fmt.Printf("transistor cost C_tr  = $%s\n", report.Num(b.Total))
	fmt.Printf("  manufacturing share = $%s  (Cm_sq %s $/cm²)\n", report.Num(b.Manufacturing), report.Num(b.CmSq))
	fmt.Printf("  design+mask share   = $%s  (Cd_sq %s $/cm², C_DE $%s)\n",
		report.Num(b.DesignAndMask), report.Num(b.CdSq), report.Num(b.DesignDE))
	fmt.Printf("die: %s cm², $%s at N_tr = %s\n",
		report.Num(b.DieArea), report.Num(b.DieCost), report.Num(s.Design.Transistors))
}

// parseSweep parses "lo:hi:points".
func parseSweep(s string) (lo, hi float64, n int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("sweep spec %q must be lo:hi:points", s)
	}
	if lo, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return 0, 0, 0, fmt.Errorf("sweep lo: %w", err)
	}
	if hi, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return 0, 0, 0, fmt.Errorf("sweep hi: %w", err)
	}
	if n, err = strconv.Atoi(parts[2]); err != nil {
		return 0, 0, 0, fmt.Errorf("sweep points: %w", err)
	}
	return lo, hi, n, nil
}
