package main

import (
	"context"
	"testing"
)

func TestRunSingleArtifacts(t *testing.T) {
	// The cheap artifacts exercise every emit path (table, figure, both).
	for _, id := range []string{"tablea1", "fig2", "fig3", "x1", "x5", "x7", "x12"} {
		if err := run(context.Background(), id, false); err != nil {
			t.Errorf("run(%q): %v", id, err)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	for _, id := range []string{"tablea1", "fig2", "x5"} {
		if err := run(context.Background(), id, true); err != nil {
			t.Errorf("run(%q, csv): %v", id, err)
		}
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if err := run(context.Background(), "nope", false); err == nil {
		t.Fatal("accepted unknown artifact")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	if err := run(context.Background(), "FIG2", false); err != nil {
		t.Fatalf("case-insensitive match failed: %v", err)
	}
}
