// Command figures regenerates every table and figure of the paper and the
// extension studies from DESIGN.md's experiment index, printing ASCII
// renderings (or CSV with -csv) to stdout.
//
// Usage:
//
//	figures [-only id] [-csv]
//
// where id is one of: tablea1, fig1, fig2, fig3, fig4, x1…x22 (see -list).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/yield"
)

func main() {
	only := flag.String("only", "", "regenerate a single artifact (tablea1, fig1…fig4, x1…x22)")
	csv := flag.Bool("csv", false, "emit CSV instead of rendered tables/figures")
	list := flag.Bool("list", false, "list every artifact with its title and exit")
	workers := flag.Int("workers", 0, "worker goroutines for simulations and sweeps (0 = all cores); artifacts are identical for any value")
	o := &obs.Flags{}
	o.RegisterFlags(flag.CommandLine)
	prof := profiling.Register()
	flag.Parse()
	cliutil.Validate(prof, o)
	parallel.SetDefaultWorkers(*workers)
	slog.SetDefault(o.Logger(os.Stderr))

	if *list {
		for _, a := range experiments.Manifest() {
			fmt.Printf("%-8s %s\n", a.ID, a.Title)
		}
		return
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	ctx := o.StartRoot(context.Background(), "figures.run")
	err := run(ctx, *only, *csv)
	o.Finish(os.Stderr)
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

type artifact struct {
	id  string
	run func(csv bool) error
}

func run(ctx context.Context, only string, csv bool) error {
	arts := []artifact{
		{"tablea1", func(csv bool) error {
			_, tbl, err := experiments.TableA1()
			return emitTable(tbl, csv, err)
		}},
		{"fig1", func(csv bool) error {
			res, fig, err := experiments.Figure1()
			if err != nil {
				return err
			}
			if err := emitFigure(fig, csv); err != nil {
				return err
			}
			if !csv {
				fmt.Printf("industry s_d trend: %+.2f squares/year (R²=%.2f)\n", res.IndustryTrend.Slope, res.IndustryTrend.R2)
				fmt.Printf("Intel trend: %+.2f /yr; AMD pre-K7 mean %.0f vs Intel %.0f; K7 s_d %.0f\n\n",
					res.IntelTrend.Slope, res.AMDMeanPreK7, res.IntelMeanPre, res.K7Sd)
			}
			return nil
		}},
		{"fig2", func(csv bool) error {
			_, fig, err := experiments.Figure2()
			return emitFigure(fig, csv, err)
		}},
		{"fig3", func(csv bool) error {
			rows, fig, err := experiments.Figure3()
			if err != nil {
				return err
			}
			if err := emitFigure(fig, csv); err != nil {
				return err
			}
			if !csv {
				tbl := report.NewTable("Figure 3 rows", "year", "λ µm", "implied s_d", "required s_d", "ratio", "roadmap die $")
				for _, r := range rows {
					tbl.AddRow(r.Year, r.LambdaUM, r.ImpliedSd, r.RequiredSd, r.Ratio, r.DieCost)
				}
				fmt.Println(tbl.String())
			}
			return nil
		}},
		{"fig4", func(csv bool) error {
			for _, c := range experiments.Figure4Cases() {
				_, fig, err := experiments.Figure4Ctx(ctx, c, 48)
				if err != nil {
					return err
				}
				if err := emitFigure(fig, csv); err != nil {
					return err
				}
			}
			return nil
		}},
		{"x1", func(csv bool) error {
			_, fig, err := experiments.OptimalSdVsVolume(500, 1e6, 16)
			return emitFigure(fig, csv, err)
		}},
		{"x2", func(csv bool) error {
			_, fig, err := experiments.YieldModelComparison(
				[]float64{0.1, 0.2, 0.4, 0.8, 1.2, 1.6, 2.4},
				1.0,
				yield.SimConfig{DiePerWafer: 400, Wafers: 200, Seed: 7})
			return emitFigure(fig, csv, err)
		}},
		{"x3", func(csv bool) error {
			res, fig, err := experiments.UtilizationCrossover(0.4, 10, 1e6, 32)
			if err != nil {
				return err
			}
			if err := emitFigure(fig, csv); err != nil {
				return err
			}
			if !csv {
				fmt.Printf("crossover volume: %.0f wafers at u=%.2f\n\n", res.Crossover, res.U)
			}
			return nil
		}},
		{"x4", func(csv bool) error {
			_, tbl, err := experiments.RegularityStudy(42)
			return emitTable(tbl, csv, err)
		}},
		{"x5", func(csv bool) error {
			_, tbl, err := experiments.GrossDieStudy([]float64{0.25, 0.5, 1, 2, 4})
			return emitTable(tbl, csv, err)
		}},
		{"x6", func(csv bool) error {
			_, fig, err := experiments.WaferCostStudy(0.18,
				[]float64{0, 3, 6, 12, 24, 48},
				[]float64{1000, 10000, 100000})
			return emitFigure(fig, csv, err)
		}},
		{"x7", func(csv bool) error {
			_, fig, err := experiments.MaskAmortization([]float64{0.25, 0.18, 0.13, 0.1}, 100, 1e6, 16)
			return emitFigure(fig, csv, err)
		}},
		{"x8", func(csv bool) error {
			_, tbl, err := experiments.LayoutDensityStudy(42)
			return emitTable(tbl, csv, err)
		}},
		{"x9", func(csv bool) error {
			_, fig, err := experiments.Figure3Stress(0.15, 0.05)
			return emitFigure(fig, csv, err)
		}},
		{"x10", func(csv bool) error {
			_, tbl, err := experiments.LayoutYieldStudy(3.0, 4000, 7)
			return emitTable(tbl, csv, err)
		}},
		{"x11", func(csv bool) error {
			_, tbl, err := experiments.TestCostStudy(
				[]float64{1e6, 10e6, 100e6},
				[]float64{0.4, 0.8})
			return emitTable(tbl, csv, err)
		}},
		{"x12", func(csv bool) error {
			_, tbl, err := experiments.MPWStudy([]float64{0.25, 0.18, 0.13, 0.1}, 10)
			return emitTable(tbl, csv, err)
		}},
		{"x13", func(csv bool) error {
			_, tbl, err := experiments.RoutabilityStudy([]float64{1.5, 2, 2.5, 3, 4}, 196, 4, 60, 11)
			return emitTable(tbl, csv, err)
		}},
		{"x14", func(csv bool) error {
			res, tbl, err := experiments.DeviceCostStudy()
			if err != nil {
				return err
			}
			if err := emitTable(tbl, csv); err != nil {
				return err
			}
			if !csv {
				fmt.Printf("same-node (0.25 µm) Pentium II / K6 transistor-cost ratio: %.2f\n\n", res.K6OverPentium)
			}
			return nil
		}},
		{"x15", func(csv bool) error {
			_, tbl, err := experiments.UncertaintyStudy(20000, 17)
			return emitTable(tbl, csv, err)
		}},
		{"x16", func(csv bool) error {
			res, tbl, err := experiments.WaferMapStudy(4, 300, 3)
			if err != nil {
				return err
			}
			if err := emitTable(tbl, csv); err != nil {
				return err
			}
			if !csv {
				fmt.Println(res.Rendered)
			}
			return nil
		}},
		{"x17", func(csv bool) error {
			_, tbl, err := experiments.TTMStudy([]float64{36, 18, 12, 6})
			return emitTable(tbl, csv, err)
		}},
		{"x18", func(csv bool) error {
			_, fig, err := experiments.MPUvsDRAM()
			return emitFigure(fig, csv, err)
		}},
		{"x19", func(csv bool) error {
			_, tbl, err := experiments.SoCStudy(300, 21)
			return emitTable(tbl, csv, err)
		}},
		{"x20", func(csv bool) error {
			_, tbl, err := experiments.RepairStudy([]float64{0.5, 1, 1.5, 2, 3}, 0.01)
			return emitTable(tbl, csv, err)
		}},
		{"x21", func(csv bool) error {
			_, fig, err := experiments.FamilyStudy(8)
			return emitFigure(fig, csv, err)
		}},
		{"x22", func(csv bool) error {
			_, tbl, err := experiments.TestEconomicsStudy([]float64{0.9, 0.7, 0.5, 0.3}, 50)
			return emitTable(tbl, csv, err)
		}},
	}
	matched := false
	for _, a := range arts {
		if only != "" && !strings.EqualFold(only, a.id) {
			continue
		}
		matched = true
		if !csv {
			fmt.Printf("=== %s ===\n", a.id)
		}
		if err := a.run(csv); err != nil {
			return fmt.Errorf("%s: %w", a.id, err)
		}
	}
	if !matched {
		return fmt.Errorf("unknown artifact %q", only)
	}
	return nil
}

func emitTable(tbl *report.Table, csv bool, errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if csv {
		fmt.Print(tbl.CSV())
		return nil
	}
	fmt.Println(tbl.String())
	return nil
}

func emitFigure(fig *report.Figure, csv bool, errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if csv {
		fmt.Print(fig.Table().CSV())
		return nil
	}
	if err := fig.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}
