// Command loadgen drives a pinned, deterministic endpoint set against a
// nanocostd or nanocostfront base URL and reports exact client-side
// latency percentiles, per-endpoint non-2xx counts and a sha256
// fingerprint of each endpoint's response body ("hash <endpoint> <sha>"
// lines, greppable by scripts).
//
// Two modes: closed loop (-concurrency N workers back to back) and open
// loop (-rps R, arrivals independent of completions — the honest way to
// measure latency at a pinned rate). With -max-p99 and/or -max-non2xx
// the run becomes an SLO check: violations print to stderr and the exit
// code is 1, which is how scripts/check.sh gates the router topology.
//
// Example:
//
//	loadgen -base http://127.0.0.1:8080 -duration 5s -rps 200 -max-p99 250ms -max-non2xx 0
//	loadgen -base http://127.0.0.1:8087 -duration 3s -concurrency 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		base        = flag.String("base", "", "base URL of the server under test, required")
		duration    = flag.Duration("duration", 5*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 4, "closed-loop worker count (ignored when -rps > 0)")
		rps         = flag.Float64("rps", 0, "open-loop arrival rate; 0 selects the closed loop")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		maxP99      = flag.Duration("max-p99", 0, "SLO: fail if client-side p99 exceeds this (0 = no check)")
		maxNon2xx   = flag.Int("max-non2xx", -1, "SLO: fail if non-2xx responses exceed this (-1 = no check)")
	)
	flag.Parse()
	if err := run(*base, *duration, *concurrency, *rps, *timeout, *maxP99, *maxNon2xx, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

// run executes one load run and applies the SLO checks; a violation is
// an error so main exits nonzero.
func run(base string, duration time.Duration, concurrency int, rps float64, timeout, maxP99 time.Duration, maxNon2xx int, out, errOut io.Writer) error {
	if base == "" {
		return fmt.Errorf("-base is required")
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     base,
		Duration:    duration,
		Concurrency: concurrency,
		RPS:         rps,
		Timeout:     timeout,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Report())
	if violations := res.CheckSLO(maxP99, maxNon2xx); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(errOut, "SLO violation: %s\n", v)
		}
		return fmt.Errorf("%d SLO violation(s)", len(violations))
	}
	return nil
}
