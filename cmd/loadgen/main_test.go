package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRunPassesAndFailsSLO drives the whole CLI path against one
// stable server: a generous SLO passes and prints hash lines; an
// impossible p99 budget fails with a violation on stderr.
func TestRunPassesAndFailsSLO(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok %s %s", r.Method, r.URL.Path)
	}))
	defer ts.Close()

	var out, errOut bytes.Buffer
	if err := run(ts.URL, 100*time.Millisecond, 2, 0, time.Second, time.Minute, 0, &out, &errOut); err != nil {
		t.Fatalf("generous SLO failed: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "hash cost ") {
		t.Fatalf("report missing hash lines:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if err := run(ts.URL, 100*time.Millisecond, 2, 0, time.Second, time.Nanosecond, -1, &out, &errOut); err == nil {
		t.Fatal("1ns p99 budget passed")
	}
	if !strings.Contains(errOut.String(), "SLO violation") {
		t.Fatalf("no violation printed:\n%s", errOut.String())
	}
}

// TestRunRequiresBase: a missing -base is a usage error.
func TestRunRequiresBase(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run("", time.Second, 1, 0, time.Second, 0, -1, &out, &errOut); err == nil {
		t.Fatal("accepted an empty base URL")
	}
}
