package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseJSON = `{
  "ncpu": 1,
  "parallel_pairs_informative": false,
  "parallel_pairs_note": "recorded on 1 CPU",
  "benchmarks": [
    {"name": "BenchmarkLayoutYield-1", "iterations": 1, "ns_per_op": 2.0e9, "bytes_per_op": 1000000, "allocs_per_op": 100},
    {"name": "BenchmarkUnionArea-1", "iterations": 10, "ns_per_op": 7.0e6, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "BenchmarkTableA1-1", "iterations": 100, "ns_per_op": 1.0e6, "bytes_per_op": 50000, "allocs_per_op": 10}
  ]
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCanonicalStripsGomaxprocsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkLayoutYield-8":  "BenchmarkLayoutYield",
		"BenchmarkLayoutYield-16": "BenchmarkLayoutYield",
		"BenchmarkLayoutYield":    "BenchmarkLayoutYield",
		"BenchmarkFigure4a-2":     "BenchmarkFigure4a",
		"BenchmarkFigure4a":       "BenchmarkFigure4a",
	}
	for in, want := range cases {
		if got := canonical(in); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchText(t *testing.T) {
	text := `goos: linux
goarch: amd64
BenchmarkLayoutYield-1   	       2	 600000000 ns/op	 1500000 B/op	    5000 allocs/op
BenchmarkUnionArea-1     	     100	   7000000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	3.2s`
	res, err := parseBenchText([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d results, want 2", len(res))
	}
	ly := res["BenchmarkLayoutYield"]
	if ly.bytesPerOp != 1500000 || ly.nsPerOp != 600000000 {
		t.Fatalf("LayoutYield parsed as %+v", ly)
	}
	if res["BenchmarkUnionArea"].bytesPerOp != 0 {
		t.Fatalf("UnionArea bytes/op = %v, want 0", res["BenchmarkUnionArea"].bytesPerOp)
	}
}

func TestLoadBaselineNote(t *testing.T) {
	path := writeTemp(t, "base.json", baseJSON)
	res, note, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("loaded %d benchmarks, want 3", len(res))
	}
	if !strings.Contains(note, "1 CPU") {
		t.Fatalf("uninformative-pairs note missing, got %q", note)
	}
	if res["BenchmarkLayoutYield"].bytesPerOp != 1000000 {
		t.Fatalf("bytes/op = %v", res["BenchmarkLayoutYield"].bytesPerOp)
	}
}

func TestRunPassesOnImprovementAndUnpinnedRegression(t *testing.T) {
	base := writeTemp(t, "base.json", baseJSON)
	// LayoutYield improves 10x; TableA1 (unpinned) doubles — must pass.
	newRun := writeTemp(t, "new.txt", strings.Join([]string{
		"BenchmarkLayoutYield-1 2 500000000 ns/op 100000 B/op 500 allocs/op",
		"BenchmarkUnionArea-1 100 7000000 ns/op 0 B/op 0 allocs/op",
		"BenchmarkTableA1-1 100 1000000 ns/op 100000 B/op 20 allocs/op",
	}, "\n"))
	if err := run(base, newRun, 0.20, 4096, defaultPinned); err != nil {
		t.Fatalf("expected pass, got: %v", err)
	}
}

func TestRunFailsOnPinnedRegression(t *testing.T) {
	base := writeTemp(t, "base.json", baseJSON)
	newRun := writeTemp(t, "new.txt",
		"BenchmarkLayoutYield-1 2 500000000 ns/op 2000000 B/op 500 allocs/op\n")
	err := run(base, newRun, 0.20, 4096, defaultPinned)
	if err == nil {
		t.Fatal("expected failure on 2x pinned bytes/op regression")
	}
	if !strings.Contains(err.Error(), "BenchmarkLayoutYield") {
		t.Fatalf("failure does not name the benchmark: %v", err)
	}
}

func TestRunSlackAbsorbsTinyAbsoluteRegressions(t *testing.T) {
	base := writeTemp(t, "base.json", baseJSON)
	// UnionArea goes 0 -> 128 B/op: huge relative delta, tiny absolute —
	// the slack must absorb it.
	newRun := writeTemp(t, "new.txt", strings.Join([]string{
		"BenchmarkLayoutYield-1 2 500000000 ns/op 1000000 B/op 500 allocs/op",
		"BenchmarkUnionArea-1 100 7000000 ns/op 128 B/op 1 allocs/op",
	}, "\n"))
	if err := run(base, newRun, 0.20, 4096, defaultPinned); err != nil {
		t.Fatalf("slack did not absorb 128 B regression: %v", err)
	}
}

func TestLoadNewDetectsJSON(t *testing.T) {
	path := writeTemp(t, "new.json", baseJSON)
	res, err := loadNew(path)
	if err != nil {
		t.Fatal(err)
	}
	if res["BenchmarkLayoutYield"].bytesPerOp != 1000000 {
		t.Fatalf("JSON new-run parse failed: %+v", res["BenchmarkLayoutYield"])
	}
}
