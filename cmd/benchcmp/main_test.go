package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

const baseJSON = `{
  "ncpu": 1,
  "parallel_pairs_informative": false,
  "parallel_pairs_note": "recorded on 1 CPU",
  "benchmarks": [
    {"name": "BenchmarkLayoutYield-1", "iterations": 1, "ns_per_op": 2.0e9, "bytes_per_op": 1000000, "allocs_per_op": 100},
    {"name": "BenchmarkUnionArea-1", "iterations": 10, "ns_per_op": 7.0e6, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "BenchmarkTableA1-1", "iterations": 100, "ns_per_op": 1.0e6, "bytes_per_op": 50000, "allocs_per_op": 10}
  ]
}`

// multiJSON is a baseline recorded on a multi-core host, carrying a
// custom throughput metric — the shape BENCH_PR6.json takes on capable
// hardware.
const multiJSON = `{
  "ncpu": 8,
  "parallel_pairs_informative": true,
  "parallel_pairs_note": "serial-vs-parallel pairs recorded on 8 CPUs",
  "benchmarks": [
    {"name": "BenchmarkLayoutYield-8", "iterations": 10, "ns_per_op": 1.0e8, "bytes_per_op": 1000000, "allocs_per_op": 100},
    {"name": "BenchmarkServeBatch1024-8", "iterations": 50, "ns_per_op": 2.0e7, "bytes_per_op": 500000, "allocs_per_op": 2000, "metrics": {"evals/sec": 50000}},
    {"name": "BenchmarkMonteCarloSerial-8", "iterations": 5, "ns_per_op": 4.0e8, "bytes_per_op": 1000, "allocs_per_op": 10}
  ]
}`

func defaultGates() gates {
	return gates{bytesThreshold: 0.20, bytesSlack: 4096, nsThreshold: 0.30, nsSlack: 500, metricThreshold: 0.30}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCanonicalStripsGomaxprocsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkLayoutYield-8":  "BenchmarkLayoutYield",
		"BenchmarkLayoutYield-16": "BenchmarkLayoutYield",
		"BenchmarkLayoutYield":    "BenchmarkLayoutYield",
		"BenchmarkFigure4a-2":     "BenchmarkFigure4a",
		"BenchmarkFigure4a":       "BenchmarkFigure4a",
	}
	for in, want := range cases {
		if got := canonical(in); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchText(t *testing.T) {
	text := `goos: linux
goarch: amd64
BenchmarkLayoutYield-1   	       2	 600000000 ns/op	 1500000 B/op	    5000 allocs/op
BenchmarkUnionArea-1     	     100	   7000000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	3.2s`
	res, err := parseBenchText([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d results, want 2", len(res))
	}
	ly := res["BenchmarkLayoutYield"]
	if ly.bytesPerOp != 1500000 || ly.nsPerOp != 600000000 {
		t.Fatalf("LayoutYield parsed as %+v", ly)
	}
	if res["BenchmarkUnionArea"].bytesPerOp != 0 {
		t.Fatalf("UnionArea bytes/op = %v, want 0", res["BenchmarkUnionArea"].bytesPerOp)
	}
}

func TestParseBenchTextCustomMetrics(t *testing.T) {
	text := `BenchmarkServeBatch1024-8   	      50	  20000000 ns/op	     51200 evals/sec	  500000 B/op	    2000 allocs/op
BenchmarkWaferMapSims-8     	      30	  40000000 ns/op	      1250 sims/sec	       0 B/op	       0 allocs/op`
	res, err := parseBenchText([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkServeBatch1024"].metrics["evals/sec"]; got != 51200 {
		t.Fatalf("evals/sec = %v, want 51200", got)
	}
	if got := res["BenchmarkWaferMapSims"].metrics["sims/sec"]; got != 1250 {
		t.Fatalf("sims/sec = %v, want 1250", got)
	}
	// Standard units must not leak into the custom-metric map.
	if m := res["BenchmarkServeBatch1024"].metrics; len(m) != 1 {
		t.Fatalf("custom metrics = %v, want only evals/sec", m)
	}
}

func TestLoadBaselineNote(t *testing.T) {
	path := writeTemp(t, "base.json", baseJSON)
	res, m, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("loaded %d benchmarks, want 3", len(res))
	}
	if m.ncpu != 1 || m.pairsInformative || !strings.Contains(m.note, "1 CPU") {
		t.Fatalf("meta = %+v, want 1 CPU, uninformative pairs", m)
	}
	if res["BenchmarkLayoutYield"].bytesPerOp != 1000000 {
		t.Fatalf("bytes/op = %v", res["BenchmarkLayoutYield"].bytesPerOp)
	}
}

func TestLoadBaselineMetrics(t *testing.T) {
	path := writeTemp(t, "multi.json", multiJSON)
	res, m, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.ncpu != 8 || !m.pairsInformative {
		t.Fatalf("meta = %+v, want 8 CPUs with informative pairs", m)
	}
	if got := res["BenchmarkServeBatch1024"].metrics["evals/sec"]; got != 50000 {
		t.Fatalf("evals/sec = %v, want 50000", got)
	}
}

func TestRunPassesOnImprovementAndUnpinnedRegression(t *testing.T) {
	base := writeTemp(t, "base.json", baseJSON)
	// LayoutYield improves 10x; TableA1 (unpinned) doubles — must pass.
	newRun := writeTemp(t, "new.txt", strings.Join([]string{
		"BenchmarkLayoutYield-1 2 500000000 ns/op 100000 B/op 500 allocs/op",
		"BenchmarkUnionArea-1 100 7000000 ns/op 0 B/op 0 allocs/op",
		"BenchmarkTableA1-1 100 1000000 ns/op 100000 B/op 20 allocs/op",
	}, "\n"))
	if err := run(base, newRun, defaultGates(), defaultPinned); err != nil {
		t.Fatalf("expected pass, got: %v", err)
	}
}

func TestRunFailsOnPinnedRegression(t *testing.T) {
	base := writeTemp(t, "base.json", baseJSON)
	newRun := writeTemp(t, "new.txt",
		"BenchmarkLayoutYield-1 2 500000000 ns/op 2000000 B/op 500 allocs/op\n")
	err := run(base, newRun, defaultGates(), defaultPinned)
	if err == nil {
		t.Fatal("expected failure on 2x pinned bytes/op regression")
	}
	if !strings.Contains(err.Error(), "BenchmarkLayoutYield") {
		t.Fatalf("failure does not name the benchmark: %v", err)
	}
}

func TestRunSlackAbsorbsTinyAbsoluteRegressions(t *testing.T) {
	base := writeTemp(t, "base.json", baseJSON)
	// UnionArea goes 0 -> 128 B/op: huge relative delta, tiny absolute —
	// the slack must absorb it.
	newRun := writeTemp(t, "new.txt", strings.Join([]string{
		"BenchmarkLayoutYield-1 2 500000000 ns/op 1000000 B/op 500 allocs/op",
		"BenchmarkUnionArea-1 100 7000000 ns/op 128 B/op 1 allocs/op",
	}, "\n"))
	if err := run(base, newRun, defaultGates(), defaultPinned); err != nil {
		t.Fatalf("slack did not absorb 128 B regression: %v", err)
	}
}

// The ns/op gate must stay silent when the baseline was recorded on one
// CPU, no matter how large the wall-clock delta looks.
func TestRunSkipsNsGateAgainstSingleCoreBaseline(t *testing.T) {
	base := writeTemp(t, "base.json", baseJSON)
	// 5x ns/op "regression" vs a single-core baseline: not gateable.
	newRun := writeTemp(t, "new.txt",
		"BenchmarkLayoutYield-1 2 10000000000 ns/op 1000000 B/op 500 allocs/op\n")
	if err := run(base, newRun, defaultGates(), defaultPinned); err != nil {
		t.Fatalf("ns gate fired against single-core baseline: %v", err)
	}
}

// Between two multi-core recordings, a pinned ns/op blowup fails the gate.
func TestRunGatesNsBetweenMultiCoreRuns(t *testing.T) {
	base := writeTemp(t, "base.json", multiJSON)
	slow := strings.Replace(multiJSON, `"ns_per_op": 1.0e8`, `"ns_per_op": 5.0e8`, 1)
	newRun := writeTemp(t, "new.json", slow)
	err := run(base, newRun, defaultGates(), defaultPinned)
	if err == nil {
		t.Fatal("expected ns/op gate failure between multi-core runs")
	}
	if !strings.Contains(err.Error(), "ns/op") || !strings.Contains(err.Error(), "BenchmarkLayoutYield") {
		t.Fatalf("failure does not name the ns/op regression: %v", err)
	}
}

// Serial/Parallel pair benchmarks stay exempt from the ns gate whenever
// the baseline flags its pairs as uninformative.
func TestRunSkipsPairBenchmarksWhenBaselineSaysSo(t *testing.T) {
	uninformative := strings.Replace(multiJSON,
		`"parallel_pairs_informative": true`, `"parallel_pairs_informative": false`, 1)
	base := writeTemp(t, "base.json", uninformative)
	slowPair := strings.Replace(uninformative, `"ns_per_op": 4.0e8`, `"ns_per_op": 4.0e9`, 1)
	newRun := writeTemp(t, "new.json", slowPair)
	if err := run(base, newRun, defaultGates(), append(defaultPinned, "BenchmarkMonteCarloSerial")); err != nil {
		t.Fatalf("pair benchmark gated despite uninformative baseline: %v", err)
	}
}

// A pinned custom throughput metric dropping past the threshold fails;
// a drop within it passes.
func TestRunGatesCustomMetrics(t *testing.T) {
	base := writeTemp(t, "base.json", multiJSON)
	collapsed := strings.Replace(multiJSON, `"metrics": {"evals/sec": 50000}`, `"metrics": {"evals/sec": 20000}`, 1)
	newRun := writeTemp(t, "new.json", collapsed)
	err := run(base, newRun, defaultGates(), defaultPinned)
	if err == nil {
		t.Fatal("expected failure on 60% evals/sec collapse")
	}
	if !strings.Contains(err.Error(), "evals/sec") {
		t.Fatalf("failure does not name the metric: %v", err)
	}

	mild := strings.Replace(multiJSON, `"metrics": {"evals/sec": 50000}`, `"metrics": {"evals/sec": 42000}`, 1)
	newRun = writeTemp(t, "mild.json", mild)
	if err := run(base, newRun, defaultGates(), defaultPinned); err != nil {
		t.Fatalf("16%% metric drop should pass the 30%% gate: %v", err)
	}
}

func TestLoadNewDetectsJSON(t *testing.T) {
	path := writeTemp(t, "new.json", baseJSON)
	res, m, err := loadNew(path)
	if err != nil {
		t.Fatal(err)
	}
	if res["BenchmarkLayoutYield"].bytesPerOp != 1000000 {
		t.Fatalf("JSON new-run parse failed: %+v", res["BenchmarkLayoutYield"])
	}
	if m.ncpu != 1 {
		t.Fatalf("JSON new-run ncpu = %d, want 1 (from the file)", m.ncpu)
	}
}

func TestLoadNewTextUsesHostCPUCount(t *testing.T) {
	path := writeTemp(t, "new.txt",
		"BenchmarkLayoutYield-1 2 500000000 ns/op 100000 B/op 500 allocs/op\n")
	_, m, err := loadNew(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.ncpu != runtime.NumCPU() {
		t.Fatalf("text new-run ncpu = %d, want runtime.NumCPU() = %d", m.ncpu, runtime.NumCPU())
	}
}
