// Command benchcmp compares a benchmark run against a recorded baseline
// (the JSON written by scripts/bench_baseline.sh) and fails when the
// bytes/op of a pinned hot-path benchmark regresses past the threshold.
// It is the repo's no-dependency stand-in for benchstat's delta gate,
// wired into `make bench-compare BASE=BENCH_PR2.json`.
//
// The new run is read either from a second baseline JSON or from raw
// `go test -bench -benchmem` text (file or stdin), so both of these work:
//
//	go test -bench=. -benchmem . | benchcmp -base BENCH_PR2.json
//	benchcmp -base BENCH_PR1.json -new BENCH_PR2.json
//
// Only benchmarks present in BOTH the pinned set and both runs are
// gated; everything else shared between the runs is reported
// informationally. A regression must exceed the relative threshold AND
// the absolute slack (bytes) to fail, so noise on near-zero-alloc
// kernels cannot trip the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark measurement. bytesPerOp is absent (-1) for
// benchmarks run without -benchmem.
type result struct {
	name       string
	nsPerOp    float64
	bytesPerOp float64
}

// baselineFile mirrors the JSON layout of scripts/bench_baseline.sh.
type baselineFile struct {
	Ncpu                     int    `json:"ncpu"`
	ParallelPairsInformative *bool  `json:"parallel_pairs_informative"`
	ParallelPairsNote        string `json:"parallel_pairs_note"`
	Benchmarks               []struct {
		Name        string   `json:"name"`
		NsPerOp     float64  `json:"ns_per_op"`
		BytesPerOp  *float64 `json:"bytes_per_op"`
		AllocsPerOp *float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// defaultPinned is the memory-sensitive kernel set gated on bytes/op.
// Benchmarks absent from either run are skipped (older baselines predate
// some of them), so extending this list is always safe.
var defaultPinned = []string{
	"BenchmarkLayoutYield",
	"BenchmarkLayoutDensity",
	"BenchmarkRegularity",
	"BenchmarkRegularityScan",
	"BenchmarkCriticalArea",
	"BenchmarkCriticalAreaCachedCold",
	"BenchmarkCriticalAreaCachedWarm",
	"BenchmarkUnionArea",
	"BenchmarkWaferMap",
	"BenchmarkMonteCarloYield",
}

func main() {
	var (
		base      = flag.String("base", "", "baseline JSON written by scripts/bench_baseline.sh (required)")
		newRun    = flag.String("new", "-", "new run: baseline JSON, go-test bench text, or - for stdin")
		threshold = flag.Float64("threshold", 0.20, "relative bytes/op regression that fails the gate")
		slack     = flag.Float64("slack", 4096, "absolute bytes/op increase a regression must also exceed")
		pin       = flag.String("pin", "", "comma-separated pinned benchmark list (default: built-in hot-path set)")
	)
	flag.Parse()
	if *base == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -base is required")
		os.Exit(2)
	}
	pinned := defaultPinned
	if *pin != "" {
		pinned = strings.Split(*pin, ",")
	}
	if err := run(*base, *newRun, *threshold, *slack, pinned); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(1)
	}
}

func run(basePath, newPath string, threshold, slack float64, pinned []string) error {
	baseRes, note, err := loadBaseline(basePath)
	if err != nil {
		return err
	}
	newRes, err := loadNew(newPath)
	if err != nil {
		return err
	}
	if note != "" {
		fmt.Printf("note: %s\n", note)
	}

	pinnedSet := make(map[string]bool, len(pinned))
	for _, p := range pinned {
		pinnedSet[strings.TrimSpace(p)] = true
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		if _, ok := baseRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks in common between %s and %s", basePath, newPath)
	}

	var failures []string
	fmt.Printf("%-36s %14s %14s %9s  %s\n", "benchmark (bytes/op)", "base", "new", "delta", "gate")
	for _, name := range names {
		b, n := baseRes[name], newRes[name]
		if b.bytesPerOp < 0 || n.bytesPerOp < 0 {
			continue // no -benchmem data on one side
		}
		delta := n.bytesPerOp - b.bytesPerOp
		rel := 0.0
		if b.bytesPerOp > 0 {
			rel = delta / b.bytesPerOp
		}
		gate := ""
		if pinnedSet[name] {
			gate = "pinned"
			if rel > threshold && delta > slack {
				gate = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: %.0f -> %.0f B/op (%+.1f%%)", name, b.bytesPerOp, n.bytesPerOp, 100*rel))
			}
		}
		fmt.Printf("%-36s %14.0f %14.0f %+8.1f%%  %s\n", name, b.bytesPerOp, n.bytesPerOp, 100*rel, gate)
	}

	if len(failures) > 0 {
		return fmt.Errorf("%d pinned benchmark(s) regressed >%.0f%% bytes/op:\n  %s",
			len(failures), 100*threshold, strings.Join(failures, "\n  "))
	}
	fmt.Printf("ok: no pinned bytes/op regression beyond %.0f%% (+%.0f B slack)\n", 100*threshold, slack)
	return nil
}

// loadBaseline reads a bench_baseline.sh JSON file. The returned note is
// non-empty when the baseline flags its parallel pairs as uninformative.
func loadBaseline(path string) (map[string]result, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	res := make(map[string]result, len(bf.Benchmarks))
	for _, b := range bf.Benchmarks {
		r := result{name: canonical(b.Name), nsPerOp: b.NsPerOp, bytesPerOp: -1}
		if b.BytesPerOp != nil {
			r.bytesPerOp = *b.BytesPerOp
		}
		res[r.name] = r
	}
	note := ""
	if bf.ParallelPairsInformative != nil && !*bf.ParallelPairsInformative {
		note = fmt.Sprintf("%s: %s", path, bf.ParallelPairsNote)
	}
	return res, note, nil
}

// loadNew reads the new run from a baseline JSON file, raw go-test bench
// text, or stdin ("-"). JSON is detected by content, not extension.
func loadNew(path string) (map[string]result, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	if trimmed := strings.TrimSpace(string(data)); strings.HasPrefix(trimmed, "{") {
		var bf baselineFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		res := make(map[string]result, len(bf.Benchmarks))
		for _, b := range bf.Benchmarks {
			r := result{name: canonical(b.Name), nsPerOp: b.NsPerOp, bytesPerOp: -1}
			if b.BytesPerOp != nil {
				r.bytesPerOp = *b.BytesPerOp
			}
			res[r.name] = r
		}
		return res, nil
	}
	return parseBenchText(data)
}

// parseBenchText extracts results from `go test -bench -benchmem` output
// lines of the form:
//
//	BenchmarkName-8   123   456789 ns/op   1024 B/op   3 allocs/op
func parseBenchText(data []byte) (map[string]result, error) {
	res := make(map[string]result)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{name: canonical(fields[0]), bytesPerOp: -1}
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
			case "B/op":
				r.bytesPerOp = v
			}
		}
		if r.nsPerOp > 0 {
			res[r.name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in new-run input")
	}
	return res, nil
}

// canonical strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so runs recorded on machines with different core counts compare.
func canonical(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
