// Command benchcmp compares a benchmark run against a recorded baseline
// (the JSON written by scripts/bench_baseline.sh) and fails when a pinned
// hot-path benchmark regresses past the threshold. It is the repo's
// no-dependency stand-in for benchstat's delta gate, wired into
// `make bench-compare BASE=BENCH_PR2.json`.
//
// Three quantities are gated, each with its own tolerance:
//
//   - bytes/op — always gated: allocation behaviour is deterministic, so
//     it compares meaningfully across any pair of hosts;
//   - ns/op — gated only when BOTH the baseline and the new run come from
//     multi-core hosts. Wall-clock on a single-core host measures the
//     scheduler as much as the code, and the parallel engine degenerates
//     to serial-plus-overhead there; benchmarks whose names mark them as
//     Serial/Parallel comparison pairs are additionally skipped whenever
//     the baseline flags its pairs as uninformative;
//   - custom throughput metrics (b.ReportMetric units such as evals/sec
//     and sims/sec) — higher is better, gated on relative decrease, and
//     like ns/op only trusted between multi-core hosts.
//
// The new run is read either from a second baseline JSON or from raw
// `go test -bench -benchmem` text (file or stdin), so both of these work:
//
//	go test -bench=. -benchmem . | benchcmp -base BENCH_PR6.json
//	benchcmp -base BENCH_PR2.json -new BENCH_PR6.json
//
// Only benchmarks present in BOTH the pinned set and both runs are
// gated; everything else shared between the runs is reported
// informationally. A regression must exceed the relative threshold AND
// the absolute slack to fail, so noise on near-zero kernels cannot trip
// the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark measurement. bytesPerOp is absent (-1) for
// benchmarks run without -benchmem; metrics holds any custom
// b.ReportMetric values keyed by unit (e.g. "evals/sec").
type result struct {
	name       string
	nsPerOp    float64
	bytesPerOp float64
	metrics    map[string]float64
}

// meta describes the host a run was recorded on, as far as the input
// reveals it: baseline JSONs carry it explicitly, raw bench text is
// assumed to come from the current machine.
type meta struct {
	ncpu             int
	pairsInformative bool
	note             string
}

// baselineFile mirrors the JSON layout of scripts/bench_baseline.sh.
type baselineFile struct {
	Ncpu                     int    `json:"ncpu"`
	ParallelPairsInformative *bool  `json:"parallel_pairs_informative"`
	ParallelPairsNote        string `json:"parallel_pairs_note"`
	Benchmarks               []struct {
		Name        string             `json:"name"`
		NsPerOp     float64            `json:"ns_per_op"`
		BytesPerOp  *float64           `json:"bytes_per_op"`
		AllocsPerOp *float64           `json:"allocs_per_op"`
		Metrics     map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

// defaultPinned is the hot-path set gated on bytes/op, and — between
// multi-core hosts — on ns/op and custom throughput metrics. Benchmarks
// absent from either run are skipped (older baselines predate some of
// them), so extending this list is always safe.
var defaultPinned = []string{
	"BenchmarkLayoutYield",
	"BenchmarkLayoutDensity",
	"BenchmarkRegularity",
	"BenchmarkRegularityScan",
	"BenchmarkCriticalArea",
	"BenchmarkCriticalAreaCachedCold",
	"BenchmarkCriticalAreaCachedWarm",
	"BenchmarkUnionArea",
	"BenchmarkWaferMap",
	"BenchmarkMonteCarloYield",
	"BenchmarkEvalBatch1024",
	"BenchmarkServeBatch1024",
	"BenchmarkWaferMapSims",
}

// gates bundles the per-quantity thresholds. A regression fails only
// when it exceeds both the relative threshold and the absolute slack of
// its quantity.
type gates struct {
	bytesThreshold  float64
	bytesSlack      float64
	nsThreshold     float64
	nsSlack         float64
	metricThreshold float64
}

func main() {
	var (
		base            = flag.String("base", "", "baseline JSON written by scripts/bench_baseline.sh (required)")
		newRun          = flag.String("new", "-", "new run: baseline JSON, go-test bench text, or - for stdin")
		threshold       = flag.Float64("threshold", 0.20, "relative bytes/op regression that fails the gate")
		slack           = flag.Float64("slack", 4096, "absolute bytes/op increase a regression must also exceed")
		nsThreshold     = flag.Float64("ns-threshold", 0.30, "relative ns/op regression that fails the gate (multi-core hosts only)")
		nsSlack         = flag.Float64("ns-slack", 500, "absolute ns/op increase a regression must also exceed")
		metricThreshold = flag.Float64("metric-threshold", 0.30, "relative drop in a custom throughput metric that fails the gate")
		pin             = flag.String("pin", "", "comma-separated pinned benchmark list (default: built-in hot-path set)")
	)
	flag.Parse()
	if *base == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -base is required")
		os.Exit(2)
	}
	pinned := defaultPinned
	if *pin != "" {
		pinned = strings.Split(*pin, ",")
	}
	g := gates{
		bytesThreshold:  *threshold,
		bytesSlack:      *slack,
		nsThreshold:     *nsThreshold,
		nsSlack:         *nsSlack,
		metricThreshold: *metricThreshold,
	}
	if err := run(*base, *newRun, g, pinned); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(1)
	}
}

// pairBench reports whether a benchmark is one half of a Serial/Parallel
// comparison pair — the benchmarks whose ns/op only means something when
// the recording host had cores to parallelize over.
func pairBench(name string) bool {
	return strings.Contains(name, "Serial") || strings.Contains(name, "Parallel")
}

func run(basePath, newPath string, g gates, pinned []string) error {
	baseRes, baseMeta, err := loadBaseline(basePath)
	if err != nil {
		return err
	}
	newRes, newMeta, err := loadNew(newPath)
	if err != nil {
		return err
	}
	if baseMeta.note != "" {
		fmt.Printf("note: %s: %s\n", basePath, baseMeta.note)
	}

	pinnedSet := make(map[string]bool, len(pinned))
	for _, p := range pinned {
		pinnedSet[strings.TrimSpace(p)] = true
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		if _, ok := baseRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks in common between %s and %s", basePath, newPath)
	}

	var failures []string

	// bytes/op: deterministic, gated unconditionally.
	fmt.Printf("%-36s %14s %14s %9s  %s\n", "benchmark (bytes/op)", "base", "new", "delta", "gate")
	for _, name := range names {
		b, n := baseRes[name], newRes[name]
		if b.bytesPerOp < 0 || n.bytesPerOp < 0 {
			continue // no -benchmem data on one side
		}
		delta := n.bytesPerOp - b.bytesPerOp
		rel := 0.0
		if b.bytesPerOp > 0 {
			rel = delta / b.bytesPerOp
		}
		gate := ""
		if pinnedSet[name] {
			gate = "pinned"
			if rel > g.bytesThreshold && delta > g.bytesSlack {
				gate = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: %.0f -> %.0f B/op (%+.1f%%)", name, b.bytesPerOp, n.bytesPerOp, 100*rel))
			}
		}
		fmt.Printf("%-36s %14.0f %14.0f %+8.1f%%  %s\n", name, b.bytesPerOp, n.bytesPerOp, 100*rel, gate)
	}

	// ns/op: only meaningful between multi-core hosts.
	nsGate := baseMeta.ncpu > 1 && newMeta.ncpu > 1
	fmt.Printf("\n%-36s %14s %14s %9s  %s\n", "benchmark (ns/op)", "base", "new", "delta", "gate")
	for _, name := range names {
		b, n := baseRes[name], newRes[name]
		if b.nsPerOp <= 0 || n.nsPerOp <= 0 {
			continue
		}
		delta := n.nsPerOp - b.nsPerOp
		rel := delta / b.nsPerOp
		gate := ""
		switch {
		case !nsGate:
			gate = "skip (single-core run)"
		case pairBench(name) && !baseMeta.pairsInformative:
			gate = "skip (pairs uninformative in baseline)"
		case pinnedSet[name]:
			gate = "pinned"
			if rel > g.nsThreshold && delta > g.nsSlack {
				gate = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", name, b.nsPerOp, n.nsPerOp, 100*rel))
			}
		}
		fmt.Printf("%-36s %14.0f %14.0f %+8.1f%%  %s\n", name, b.nsPerOp, n.nsPerOp, 100*rel, gate)
	}
	if !nsGate {
		fmt.Printf("ns/op gate skipped: baseline ncpu=%d, new run ncpu=%d (need >1 on both)\n",
			baseMeta.ncpu, newMeta.ncpu)
	}

	// Custom throughput metrics (evals/sec, sims/sec, ...): higher is
	// better; same multi-core caveat as ns/op.
	printedHeader := false
	for _, name := range names {
		b, n := baseRes[name], newRes[name]
		units := make([]string, 0, len(b.metrics))
		for unit := range b.metrics {
			if _, ok := n.metrics[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			if !printedHeader {
				fmt.Printf("\n%-36s %-10s %12s %12s %9s  %s\n", "benchmark (custom metric)", "unit", "base", "new", "delta", "gate")
				printedHeader = true
			}
			bv, nv := b.metrics[unit], n.metrics[unit]
			if bv <= 0 {
				continue
			}
			rel := (nv - bv) / bv
			gate := ""
			switch {
			case !nsGate:
				gate = "skip (single-core run)"
			case pinnedSet[name]:
				gate = "pinned"
				if -rel > g.metricThreshold {
					gate = "FAIL"
					failures = append(failures,
						fmt.Sprintf("%s: %.0f -> %.0f %s (%+.1f%%)", name, bv, nv, unit, 100*rel))
				}
			}
			fmt.Printf("%-36s %-10s %12.0f %12.0f %+8.1f%%  %s\n", name, unit, bv, nv, 100*rel, gate)
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("%d pinned benchmark(s) regressed past the gate:\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Printf("ok: no pinned regression (bytes/op >%.0f%%+%.0fB", 100*g.bytesThreshold, g.bytesSlack)
	if nsGate {
		fmt.Printf("; ns/op >%.0f%%+%.0fns; metrics <-%.0f%%", 100*g.nsThreshold, g.nsSlack, 100*g.metricThreshold)
	}
	fmt.Println(")")
	return nil
}

// decodeBaseline converts a parsed baselineFile into the result map and
// host metadata.
func decodeBaseline(bf baselineFile) (map[string]result, meta) {
	res := make(map[string]result, len(bf.Benchmarks))
	for _, b := range bf.Benchmarks {
		r := result{name: canonical(b.Name), nsPerOp: b.NsPerOp, bytesPerOp: -1}
		if b.BytesPerOp != nil {
			r.bytesPerOp = *b.BytesPerOp
		}
		if len(b.Metrics) > 0 {
			r.metrics = b.Metrics
		}
		res[r.name] = r
	}
	m := meta{ncpu: bf.Ncpu, pairsInformative: true}
	if bf.ParallelPairsInformative != nil && !*bf.ParallelPairsInformative {
		m.pairsInformative = false
		m.note = bf.ParallelPairsNote
	}
	return res, m
}

// loadBaseline reads a bench_baseline.sh JSON file. The returned meta
// carries the recording host's CPU count and whether its Serial/Parallel
// pairs mean anything.
func loadBaseline(path string) (map[string]result, meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, meta{}, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, meta{}, fmt.Errorf("%s: %w", path, err)
	}
	res, m := decodeBaseline(bf)
	return res, m, nil
}

// loadNew reads the new run from a baseline JSON file, raw go-test bench
// text, or stdin ("-"). JSON is detected by content, not extension; raw
// text is assumed to have been produced on the current machine, so its
// CPU count is runtime.NumCPU().
func loadNew(path string) (map[string]result, meta, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, meta{}, err
	}
	if trimmed := strings.TrimSpace(string(data)); strings.HasPrefix(trimmed, "{") {
		var bf baselineFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, meta{}, fmt.Errorf("%s: %w", path, err)
		}
		res, m := decodeBaseline(bf)
		return res, m, nil
	}
	res, err := parseBenchText(data)
	if err != nil {
		return nil, meta{}, err
	}
	return res, meta{ncpu: runtime.NumCPU(), pairsInformative: runtime.NumCPU() > 1}, nil
}

// parseBenchText extracts results from `go test -bench -benchmem` output
// lines of the form:
//
//	BenchmarkName-8   123   456789 ns/op   98765 evals/sec   1024 B/op   3 allocs/op
//
// Any value/unit pair whose unit is not one of the standard three is
// collected as a custom b.ReportMetric metric.
func parseBenchText(data []byte) (map[string]result, error) {
	res := make(map[string]result)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{name: canonical(fields[0]), bytesPerOp: -1}
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.nsPerOp = v
			case "B/op":
				r.bytesPerOp = v
			case "allocs/op":
				// tracked via bytes/op; ignored here
			default:
				if strings.ContainsRune(unit, '/') {
					if r.metrics == nil {
						r.metrics = make(map[string]float64)
					}
					r.metrics[unit] = v
				}
			}
		}
		if r.nsPerOp > 0 {
			res[r.name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in new-run input")
	}
	return res, nil
}

// canonical strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so runs recorded on machines with different core counts compare.
func canonical(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
