GO ?= go
BASE ?= BENCH_PR2.json

.PHONY: all build vet test race bench bench-smoke bench-compare check baseline serve smoke-serve obs-check slo distjob

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness (every table/figure plus the serial-vs-parallel
# hot-path pairs). Compare against the recorded BENCH_PR*.json baselines.
bench:
	$(GO) test -bench=. -benchmem -count=1 .

# Quick regression signal: one iteration of each benchmark.
bench-smoke:
	$(GO) test -run xxx -bench=. -benchtime=1x .

# Full benchmark run gated against a recorded baseline: fails when a
# pinned hot-path benchmark regresses >20% bytes/op. Override the
# baseline with BASE=, e.g. `make bench-compare BASE=BENCH_PR1.json`.
bench-compare:
	./scripts/bench_compare.sh $(BASE)

# Run the nanocostd cost-model service on its default port (:8087).
serve:
	$(GO) run ./cmd/nanocostd

# End-to-end daemon smoke: build nanocostd, boot it on an ephemeral port,
# exercise /healthz and /v1/cost, and verify the SIGTERM drain.
smoke-serve:
	./scripts/smoke_serve.sh

# Router SLO gate: boot two nanocostd replicas behind nanocostfront,
# drive loadgen at a pinned rate, and require the p99 budget, zero
# non-2xx and byte-identical responses — including across a kill -9 of
# one replica mid-load. Tune with SLO_RPS= and SLO_P99=.
slo:
	./scripts/slo_check.sh

# Distributed-job gate: run a 2×10⁸-trial job on one plain replica for
# the reference bytes, rerun it across a coordinator + peer worker,
# kill -9 the worker after its first shard upload, and require the
# merged result byte-identical. Tune with DISTJOB_TRIALS=,
# DISTJOB_SHARDS= and DISTJOB_LEASE_TTL=.
distjob:
	./scripts/distjob_check.sh

# Observability gate: vet the telemetry packages and run the tracing,
# registry and /metrics text-exposition conformance tests race-enabled.
obs-check:
	$(GO) vet ./internal/obs/ ./internal/serve/
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -race -count=1 -run 'TestMetricsExpositionConformance|TestTrace|TestRequestID|TestAccessLog|TestStreamedStatus' ./internal/serve/

# The gate run by CI and by scripts/check.sh.
check: vet build race bench-smoke obs-check

# Refresh the recorded benchmark baseline (writes $(BASE)).
baseline:
	./scripts/bench_baseline.sh $(BASE)
