GO ?= go

.PHONY: all build vet test race bench bench-smoke check baseline

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness (every table/figure plus the serial-vs-parallel
# hot-path pairs). Compare against BENCH_PR1.json.
bench:
	$(GO) test -bench=. -benchmem -count=1 .

# Quick regression signal: one iteration of each benchmark.
bench-smoke:
	$(GO) test -run xxx -bench=. -benchtime=1x .

# The gate run by CI and by scripts/check.sh.
check: vet build race bench-smoke

# Refresh the recorded benchmark baseline (writes BENCH_PR1.json).
baseline:
	./scripts/bench_baseline.sh BENCH_PR1.json
