package repro_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/experiments"
	"repro/internal/itrs"
	"repro/internal/wafer"
	"repro/internal/yield"
)

// The integration tests below check consistency ACROSS experiments and
// substrates — relationships no single package test can see.

// The X-1 optimum at the Figure 4a operating point must agree with the
// Figure 4a optimum itself (same scenario reached through two paths).
func TestOptimaAgreeAcrossExperiments(t *testing.T) {
	c := experiments.Figure4Cases()[0] // Nw=5000, Y=0.4
	curves, _, err := experiments.Figure4(c, 40)
	if err != nil {
		t.Fatal(err)
	}
	var fig4Opt float64
	for _, cv := range curves {
		if cv.LambdaUM == 0.18 {
			fig4Opt = cv.Optimum.Sd
		}
	}
	s, err := experiments.Figure4Scenario(c, 0.18)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.OptimalSd(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.Sd-fig4Opt) > 0.5 {
		t.Fatalf("optima disagree: %v vs %v", direct.Sd, fig4Opt)
	}
}

// Figures 2 and 3 are two views of the same derivation: the experiment
// rows must match itrs.DeriveAll exactly.
func TestFigure2And3ShareTheDerivation(t *testing.T) {
	f2, _, err := experiments.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	f3, _, err := experiments.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	base, err := itrs.DeriveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) != len(base) || len(f3) != len(base) {
		t.Fatalf("row counts differ: %d, %d, %d", len(f2), len(f3), len(base))
	}
	for i := range base {
		if f2[i].ImpliedSd != base[i].ImpliedSd || f3[i].RequiredSd != base[i].RequiredSd {
			t.Fatalf("row %d diverged between figures", i)
		}
	}
}

// The required s_d that Figure 3 computes must reproduce the target die
// cost when pushed back through the eq (3) scenario — closing the loop
// between itrs and core.
func TestFigure3RoundTripsThroughEq3(t *testing.T) {
	rows, err := itrs.DeriveAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		p := core.Process{
			Name: "rt", LambdaUM: r.LambdaUM,
			CostPerCM2: itrs.CostPerCM2, Yield: itrs.Yield, WaferAreaCM2: 300,
		}
		die, err := core.DieManufacturingCost(p, core.Design{
			Name: "rt", Transistors: r.Transistors, Sd: r.RequiredSd,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(die-itrs.TargetDieCost) > 1e-6 {
			t.Fatalf("%d: required s_d reproduces $%v, want $%v", r.Year, die, itrs.TargetDieCost)
		}
	}
}

// Pricing a Table A1 device through eq (1) (wafer route, using the exact
// gross-die count) must agree with eq (3) (per-cm² route) up to the
// wafer-edge utilization the per-cm² model ignores.
func TestEq1AndEq3AgreeOnTableA1Device(t *testing.T) {
	d, err := devices.ByID(11) // Pentium III, 1.23 cm², 0.25 µm
	if err != nil {
		t.Fatal(err)
	}
	area := d.DieAreaCM2()
	chips, err := wafer.DiePerWafer(wafer.Wafer200, area)
	if err != nil {
		t.Fatal(err)
	}
	csq, err := devices.EraCostPerCM2(d.LambdaUM)
	if err != nil {
		t.Fatal(err)
	}
	waferCost := csq * wafer.Wafer200.AreaCM2()
	eq1, err := core.CostPerTransistorFromWafer(waferCost, d.TotalTransistors(), chips, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := d.SdTotal()
	if err != nil {
		t.Fatal(err)
	}
	eq3, err := core.ManufacturingCostPerTransistor(core.Process{
		Name: "x", LambdaUM: d.LambdaUM, CostPerCM2: csq, Yield: 0.8, WaferAreaCM2: 300,
	}, core.Design{Name: "x", Transistors: d.TotalTransistors(), Sd: sd})
	if err != nil {
		t.Fatal(err)
	}
	// eq (1) charges the whole wafer including unusable edge area, so it
	// sits a bounded amount above eq (3).
	if eq1 < eq3 {
		t.Fatalf("eq(1) %v below eq(3) %v — impossible", eq1, eq3)
	}
	if eq1 > 1.35*eq3 {
		t.Fatalf("eq(1) %v too far above eq(3) %v", eq1, eq3)
	}
}

// The yield substrate and the layout substrate must agree on the meaning
// of "critical fraction": feeding a layout-measured fraction into the
// analytic Poisson model matches the geometric Monte Carlo (established
// in package tests) — here we check the composed X-10 rows stay
// consistent with the raw models they quote.
func TestX10RowsInternallyConsistent(t *testing.T) {
	rows, _, err := experiments.LayoutYieldStudy(2.0, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		want := (yield.Poisson{}).Yield(2.0 * r.CriticalFrac)
		if math.Abs(r.AnalyticYield-want) > 1e-12 {
			t.Fatalf("%s: analytic %v not Poisson(λ·cf) %v", r.Style, r.AnalyticYield, want)
		}
	}
}

// Utilization semantics must agree between the plain scenario (§2.5) and
// the X-3 experiment pair construction.
func TestUtilizationSemanticsConsistent(t *testing.T) {
	res, _, err := experiments.UtilizationCrossover(0.5, 10, 1e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	// At any volume, the FPGA's cost must be exactly 1/0.5 of what the
	// same scenario at u=1 would cost (the u·Y substitution), modulo its
	// different design economics — verify via the core model directly.
	s, err := experiments.Figure4Scenario(experiments.Figure4Case{Wafers: 1000, Yield: 0.8}, 0.18)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	s.Utilization = 0.5
	half, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.Total-2*full.Total) > 1e-15 {
		t.Fatalf("u=0.5 cost %v != 2× u=1 cost %v", half.Total, full.Total)
	}
	_ = res
}

// The regenerated Table A1 and the Figure 1 series must describe the same
// population.
func TestTableA1AndFigure1Consistent(t *testing.T) {
	rows, _, err := experiments.TableA1()
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := experiments.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	withLogic := 0
	for _, r := range rows {
		if r.LogicTx > 0 {
			withLogic++
		}
	}
	if len(res.Points) != withLogic {
		t.Fatalf("Figure 1 has %d points, Table A1 has %d logic rows", len(res.Points), withLogic)
	}
}
