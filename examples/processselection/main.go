// Process selection: which technology node should a product use?
//
// The newest node is not automatically the cheapest. Shrinking λ cuts the
// eq (3) silicon cost quadratically, but the mask set and the wafer cost
// both grow, and an immature line yields worse. This example prices the
// same 25M-transistor product on four nodes, with wafer cost coming from
// the fab-economics substrate (capex amortization + maturity + volume
// learning per ref [30]) and mask cost from the node-dependent mask model
// — the eq (7) "everything is a function of the operating point" view —
// and picks the argmin at two production volumes.
//
// The model's answer cuts against folk wisdom: at LOW volume the newer
// node wins, because eq (4) charges the amortized NRE per cm² and the
// shrink shrinks the product's cm² — λ²·s_d scales the design share too.
// At HIGH volume the NRE vanishes and the immature node's silicon premium
// (higher Cm_sq, lower yield) hands the win to the mature node. The
// crossover is exactly the §3.1 message: the optimum depends on volume.
//
// Run: go run ./examples/processselection
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fab"
	"repro/internal/maskcost"
	"repro/internal/report"
)

type node struct {
	lambdaUM float64
	ageMo    float64 // process maturity at our tapeout
	yield    float64
}

func main() {
	nodes := []node{
		{0.25, 48, 0.90}, // fully mature, cheap, but big die
		{0.18, 30, 0.85},
		{0.13, 12, 0.70},
		{0.10, 3, 0.45}, // bleeding edge: immature, low yield
	}
	for _, wafers := range []float64{2000, 200000} {
		tbl := report.NewTable(
			fmt.Sprintf("25M-transistor product at %v wafers", wafers),
			"node µm", "Cm_sq $/cm²", "mask $k", "die cm²", "C_tr $", "die $", "verdict")
		bestIdx, bestCost := -1, 0.0
		rows := make([]core.Breakdown, len(nodes))
		for i, n := range nodes {
			b, err := price(n, wafers)
			if err != nil {
				log.Fatal(err)
			}
			rows[i] = b
			if bestIdx < 0 || b.Total < bestCost {
				bestIdx, bestCost = i, b.Total
			}
		}
		for i, n := range nodes {
			verdict := ""
			if i == bestIdx {
				verdict = "<-- cheapest"
			}
			mask, err := maskcost.DefaultModel().SetCost(n.lambdaUM)
			if err != nil {
				log.Fatal(err)
			}
			tbl.AddRow(n.lambdaUM, rows[i].CmSq, mask/1e3, rows[i].DieArea, rows[i].Total, rows[i].DieCost, verdict)
		}
		fmt.Println(tbl.String())
	}
	fmt.Println("Low volume: the shrink wins — a smaller die absorbs the amortized NRE")
	fmt.Println("(the design share of eq (4) scales with λ²·s_d like everything else).")
	fmt.Println("High volume: NRE vanishes and the mature node's cheap, high-yield")
	fmt.Println("silicon wins. The cost-optimal node is a function of volume (§3.1).")
}

// price evaluates the product on one node at one volume, deriving the
// wafer cost from the fab substrate instead of assuming a constant.
func price(n node, wafers float64) (core.Breakdown, error) {
	line, err := fab.ReferenceFabline(n.lambdaUM, 200)
	if err != nil {
		return core.Breakdown{}, err
	}
	costFn, err := fab.MatureWaferCost(line, 9, n.ageMo,
		fab.ExperienceCurve{FirstUnitCost: 1, LearningRate: 0.92}, 10000)
	if err != nil {
		return core.Breakdown{}, err
	}
	mask, err := maskcost.DefaultModel().SetCost(n.lambdaUM)
	if err != nil {
		return core.Breakdown{}, err
	}
	scenario := core.Scenario{
		Process: core.Process{
			Name:         fmt.Sprintf("node-%.2f", n.lambdaUM),
			LambdaUM:     n.lambdaUM,
			CostPerCM2:   8, // placeholder; overridden by CmSqFn below
			Yield:        n.yield,
			WaferAreaCM2: line.WaferAreaCM2(),
		},
		Design:     core.Design{Name: "product", Transistors: 25e6, Sd: 300},
		DesignCost: core.DefaultDesignCostModel(),
		MaskCost:   mask,
		Wafers:     wafers,
	}
	gen := core.Generalized{
		Scenario: scenario,
		CmSqFn:   costFn,
	}
	return gen.TransistorCost()
}
