// Regularity study: the paper's closing recommendation, executed.
//
// §3.2 argues that only "highly geometrically regular structures, created
// out of the limited smallest possible number of unique geometrical
// patterns" can keep nanometer design cost manageable, because regular
// layouts let expensive characterization be reused, which keeps physical
// prediction accurate, which keeps the timing-closure loop short. This
// example runs that whole causal chain on generated layouts: geometry →
// pattern scan → prediction error → closure iterations → dollars — and
// then shows the flip side, the eq (4) total cost, where regularity's
// sparser silicon (bigger s_d) costs manufacturing money back.
//
// Run: go run ./examples/regularitystudy
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	rows, tbl, err := experiments.RegularityStudy(2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.String())

	// The trade §3.1 wants optimized jointly: plug each style's measured
	// s_d and its measured design cost into the total transistor cost at
	// two volumes.
	for _, wafers := range []float64{2000, 100000} {
		out := report.NewTable(
			fmt.Sprintf("eq (4) total cost per transistor at %v wafers", wafers),
			"style", "s_d", "C_DE $M", "C_tr $", "die $")
		for _, r := range rows {
			sd := r.MeasuredSd
			if sd <= 105 {
				sd = 105 // clamp into the eq (4) domain above s_d0
			}
			s, err := experiments.Figure4Scenario(
				experiments.Figure4Case{Wafers: wafers, Yield: 0.8}, 0.18)
			if err != nil {
				log.Fatal(err)
			}
			s.Design.Sd = sd
			// Replace the eq (6) design cost with the measured one by
			// folding it into the per-cm² term via the generalized model.
			gen := core.Generalized{
				Scenario: s,
				CdSqFn: func(aw, lam, nw, ntr, sd0 float64) float64 {
					return (s.MaskCost + r.DesignCost) / (nw * aw)
				},
			}
			b, err := gen.TransistorCost()
			if err != nil {
				log.Fatal(err)
			}
			out.AddRow(r.Style, sd, r.DesignCost/1e6, b.Total, b.DieCost)
		}
		fmt.Println(out.String())
	}
	fmt.Println("Regular styles win on design cost; dense custom wins on silicon.")
	fmt.Println("At volume, silicon dominates — which is why the paper asks for")
	fmt.Println("design styles that are regular AND dense (precharacterized blocks).")
}
