// Risk analysis: error bars for the paper's cost compass.
//
// The paper offers eq (4) as a "compass" for navigating nanometer cost
// stumbling blocks. A real program decision needs more than a point
// estimate: yield at tapeout is a guess, the foundry's cost per cm² is a
// negotiation, the achieved s_d depends on a design team that hasn't
// started, and volume depends on a market that doesn't exist yet. This
// example propagates those uncertainties through eq (4) by Monte Carlo,
// prints cost quantiles, and runs a tornado analysis to show which input
// is worth de-risking first.
//
// Run: go run ./examples/riskanalysis
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/maskcost"
	"repro/internal/report"
)

func main() {
	mask, err := maskcost.DefaultModel().SetCost(0.13)
	if err != nil {
		log.Fatal(err)
	}
	base := core.Scenario{
		Process: core.Process{
			Name:         "cmos-130nm",
			LambdaUM:     0.13,
			CostPerCM2:   14, // young node, per the fab model
			Yield:        0.6,
			WaferAreaCM2: 300,
		},
		Design:     core.Design{Name: "soc", Transistors: 40e6, Sd: 320},
		DesignCost: core.DefaultDesignCostModel(),
		MaskCost:   mask,
		Wafers:     8000,
	}
	point, err := base.TransistorCost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point estimate: $%s/transistor, $%s/die\n\n",
		report.Num(point.Total), report.Num(point.DieCost))

	// What the program actually knows before tapeout.
	u := core.UncertainScenario{
		Base:   base,
		Yield:  core.Uniform(0.35, 0.8),   // bring-up risk
		CmSq:   core.LogNormal(14, 1.25),  // foundry pricing band
		Sd:     core.Uniform(250, 500),    // design-team outcome
		Wafers: core.LogNormal(8000, 1.6), // demand risk
	}
	samples, err := u.MonteCarloSamples(50000, 2027)
	if err != nil {
		log.Fatal(err)
	}
	q, err := u.MonteCarlo(50000, 2027)
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable("eq (4) transistor cost under uncertainty (50k samples)",
		"quantile", "$/transistor", "$/die (40M tx)")
	tbl.AddRow("p5", q.P5, q.P5*40e6)
	tbl.AddRow("median", q.P50, q.P50*40e6)
	tbl.AddRow("mean", q.Mean, q.Mean*40e6)
	tbl.AddRow("p95", q.P95, q.P95*40e6)
	fmt.Println(tbl.String())
	fmt.Printf("p95/p5 cost ratio: %.1fx — the point estimate hides a wide program risk.\n\n", q.P95/q.P5)

	// Shape of the distribution (long right tail from the yield floor).
	perDie := make([]float64, len(samples))
	for i, c := range samples {
		perDie[i] = c * 40e6
	}
	if err := (report.Histogram{Title: "die-cost distribution, $", Bins: 14}).Render(os.Stdout, perDie); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	bars, err := core.Tornado(base, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	tt := report.NewTable("tornado: cost swing from a ±20% move in each input",
		"input", "low $", "high $", "swing $")
	for _, b := range bars {
		tt.AddRow(b.Name, b.LowCost, b.HighCost, b.Swing())
	}
	fmt.Println(tt.String())
	fmt.Println("λ dominates (quadratic), then yield — de-risk the process choice and")
	fmt.Println("the yield ramp before arguing about the mask quote.")
}
