// Paper walkthrough: the DAC 2001 argument, regenerated start to finish.
//
// This example replays the paper's reasoning in its own order, printing
// the evidence at each step from the experiment harness:
//
//  1. §2.2.2 — industry data (Table A1 / Figure 1): design density is
//     worsening, and the market followers run denser until they compete
//     on performance (K7).
//  2. §2.2.3 — the roadmap (Figures 2–3): the ITRS silently assumes the
//     opposite trend, and holding die cost constant demands full-custom
//     density no flow delivers: the cost contradiction.
//  3. §2.3–2.4 — eq (4)–(6): adding design cost to the model creates an
//     interior optimum s_d* that moves with volume and yield (Figure 4).
//  4. §3.2 — the prescription: regular, precharacterized, repairable
//     structures contain design cost (X-4) and yield (X-20), which is
//     why memory tracks the roadmap (X-18).
//
// Run: go run ./examples/paperwalkthrough
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	step1Industry()
	step2Roadmap()
	step3Optimum()
	step4Prescription()
}

func step1Industry() {
	fmt.Println("== 1. What industry was doing (Table A1, Figure 1) ==")
	res, _, err := experiments.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Across %d published designs, logic s_d drifts +%.1f squares/year.\n",
		len(res.Points), res.IndustryTrend.Slope)
	fmt.Printf("Intel drifts +%.1f/yr; AMD ran denser (mean %.0f vs %.0f) until the\n",
		res.IntelTrend.Slope, res.AMDMeanPreK7, res.IntelMeanPre)
	fmt.Printf("K7 joined the performance war at s_d = %.0f — 'well above 300'.\n\n", res.K7Sd)
}

func step2Roadmap() {
	fmt.Println("== 2. What the roadmap assumed (Figures 2–3) ==")
	rows, _, err := experiments.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	fmt.Printf("ITRS-implied s_d falls %.0f (%d) → %.0f (%d): the roadmap needs\n",
		first.ImpliedSd, first.Year, last.ImpliedSd, last.Year)
	fmt.Printf("designs to get DENSER while industry gets sparser.\n")
	fmt.Printf("Holding the $34 die: required s_d falls %.0f → %.0f — at the\n",
		first.RequiredSd, last.RequiredSd)
	fmt.Printf("full-custom limit (s_d0 ≈ 100) while industry ships 300+. That is\n")
	fmt.Printf("the cost contradiction; the budget ratio climbs %.2f → %.2f.\n\n",
		first.Ratio, last.Ratio)
}

func step3Optimum() {
	fmt.Println("== 3. The model's answer (eq 4, Figure 4) ==")
	cases := experiments.Figure4Cases()
	for _, c := range cases {
		curves, _, err := experiments.Figure4(c, 40)
		if err != nil {
			log.Fatal(err)
		}
		for _, cv := range curves {
			if cv.LambdaUM != 0.18 {
				continue
			}
			fmt.Printf("panel %s at 0.18 µm: optimal s_d = %.0f, C_tr = $%.2g\n",
				c.Label, cv.Optimum.Sd, cv.Optimum.Breakdown.Total)
		}
	}
	fmt.Printf("Neither minimum die size nor maximum density: the optimum moves\n")
	fmt.Printf("with volume and yield — §3.1's conclusion, located numerically.\n\n")
}

func step4Prescription() {
	fmt.Println("== 4. The prescription: regularity pays three times ==")
	reg, _, err := experiments.RegularityStudy(7)
	if err != nil {
		log.Fatal(err)
	}
	byStyle := map[string]experiments.RegularityRow{}
	for _, r := range reg {
		byStyle[r.Style] = r
	}
	sram, sparse := byStyle["sram-array"], byStyle["asic-sparse"]
	fmt.Printf("design cost: regular SRAM closes timing in %.1f iterations ($%.1fM),\n",
		sram.Iterations, sram.DesignCost/1e6)
	fmt.Printf("             sparse random logic needs %.1f ($%.1fM).\n",
		sparse.Iterations, sparse.DesignCost/1e6)

	repair, _, err := experiments.RepairStudy([]float64{3}, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yield:       at 3 defects/die, %d spares lift yield %.2f → %.2f\n",
		repair[0].Spares, repair[0].RawYield, repair[0].RepairedYield)
	fmt.Printf("             (cost multiplier %.2f — repair pays %.0fx over).\n",
		repair[0].CostMultiplier, 1/repair[0].CostMultiplier)

	dram, _, err := experiments.MPUvsDRAM()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the proof:   DRAM (one 8F² pattern) holds implied s_d at %.1f for\n",
		dram[0].DRAMSd)
	fmt.Printf("             every roadmap generation; custom logic cannot.\n")
	fmt.Println("\nConclusion: design for cost, with regular precharacterized blocks —")
	fmt.Println("the paper's 2001 agenda, executable.")
}
