// FPGA vs ASIC: the §2.5 utilization parameter in action.
//
// An FPGA fabricates transistors the product never uses — the paper
// models this by substituting Y with u·Y in eq (4). In exchange, the FPGA
// carries essentially no per-product mask or design cost. This example
// sweeps production volume for several utilizations, prints the crossover
// volume for each, and shows it moving: the better the FPGA's utilization,
// the longer it stays competitive.
//
// Run: go run ./examples/fpgautilization
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	tbl := report.NewTable("ASIC-beats-FPGA crossover volume vs utilization",
		"u", "crossover wafers", "FPGA C_tr at 100 wafers", "ASIC C_tr at 100 wafers")
	for _, u := range []float64{0.2, 0.4, 0.6, 0.8} {
		res, _, err := experiments.UtilizationCrossover(u, 10, 1e6, 8)
		if err != nil {
			log.Fatal(err)
		}
		fpga100, asic100, err := costsAt(u, 100)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(u, res.Crossover, fpga100, asic100)
	}
	fmt.Println(tbl.String())

	// Render the full curve for u = 0.4, the paper-era FPGA regime.
	_, fig, err := experiments.UtilizationCrossover(0.4, 10, 1e6, 48)
	if err != nil {
		log.Fatal(err)
	}
	if err := fig.Render(log.Writer()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBelow the crossover the amortized NRE dominates and the FPGA's wasted")
	fmt.Println("transistors are cheaper than an ASIC mask set; above it silicon wins.")
}

// costsAt evaluates both scenarios at one volume.
func costsAt(u, wafers float64) (fpgaCost, asicCost float64, err error) {
	asic, err := experiments.Figure4Scenario(experiments.Figure4Case{Wafers: wafers, Yield: 0.8}, 0.18)
	if err != nil {
		return 0, 0, err
	}
	fpga := asic
	fpga.Utilization = u
	fpga.Design.Sd = 2000
	fpga.MaskCost = 0
	fpga.DesignCost = core.DesignCostModel{A0: 1, P1: 1, P2: 1.2, Sd0: 100}
	fb, err := fpga.TransistorCost()
	if err != nil {
		return 0, 0, err
	}
	ab, err := asic.TransistorCost()
	if err != nil {
		return 0, 0, err
	}
	return fb.Total, ab.Total, nil
}
