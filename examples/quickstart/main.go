// Quickstart: price a transistor with the paper's cost model.
//
// This walks the core API end to end: define a process and a design,
// evaluate the eq (3) manufacturing cost, extend it with design and mask
// cost per eq (4)–(6), and locate the cost-optimal design density per
// §3.1.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A 0.18 µm process at the paper's stated economics: 8 $/cm², 80%
	// yield, 200 mm wafers (≈300 cm² usable).
	process := core.Process{
		Name:         "cmos-180nm",
		LambdaUM:     0.18,
		CostPerCM2:   8.0,
		Yield:        0.8,
		WaferAreaCM2: 300,
	}
	// A 10-million-transistor design at s_d = 300 squares/transistor —
	// the industrial median of Table A1.
	design := core.Design{Name: "mpu", Transistors: 10e6, Sd: 300}

	// Eq (3): manufacturing cost only.
	ctr, err := core.ManufacturingCostPerTransistor(process, design)
	if err != nil {
		log.Fatal(err)
	}
	area, err := design.AreaCM2(process.LambdaUM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eq (3): %.3g $/transistor, %.2f cm² die, $%.2f die cost\n",
		ctr, area, ctr*design.Transistors)

	// Eq (4): add design cost (eq 6 with the paper's constants) and a
	// $1M mask set, amortized over 5000 wafers.
	scenario := core.Scenario{
		Process:    process,
		Design:     design,
		DesignCost: core.DefaultDesignCostModel(),
		MaskCost:   1e6,
		Wafers:     5000,
	}
	b, err := scenario.TransistorCost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eq (4): %.3g $/transistor (manufacturing %.3g + design/mask %.3g)\n",
		b.Total, b.Manufacturing, b.DesignAndMask)
	fmt.Printf("        design effort C_DE = $%.2fM for s_d=300\n", b.DesignDE/1e6)

	// §3.1: neither the densest nor the cheapest-to-design point wins —
	// find the argmin.
	opt, err := core.OptimalSd(scenario, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal s_d at 5000 wafers: %.0f (%.3g $/transistor)\n",
		opt.Sd, opt.Breakdown.Total)

	// The optimum moves with volume: at 20x the volume, density pays.
	opt2, err := core.OptimalSd(scenario.WithWafers(100000), 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal s_d at 100000 wafers: %.0f (%.3g $/transistor)\n",
		opt2.Sd, opt2.Breakdown.Total)
}
