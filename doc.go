// Package repro is a reproduction of Wojciech Maly, "IC Design in
// High-Cost Nanometer-Technologies Era" (DAC 2001): the transistor cost
// models of eqs (1)–(7), the Table A1 industrial design-density study, the
// ITRS-1999 derivations of Figures 2–3, the cost-optimization analysis of
// Figure 4, and executable substrates for every system the paper leans on
// (wafer geometry, fab economics, yield models with Monte Carlo
// validation, a layout generator with measured s_d, repetitive-pattern
// regularity analysis, and a simulated design flow whose timing-closure
// iteration count drives design cost).
//
// The library lives under internal/; see README.md for the package map,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The bench harness in
// bench_test.go regenerates every table and figure.
package repro
